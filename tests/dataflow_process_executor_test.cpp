// ProcessExecutor suite: the multi-process backend must be a drop-in
// replacement for the in-process pool — byte-identical stage outputs, the
// same retry accounting under injected task kills, and lossless recovery
// when a whole worker process is SIGKILLed mid-stage. Fork-based tests skip
// themselves under ThreadSanitizer (fork + threads is undefined there); the
// engine itself falls back to LocalExecutor in those builds.
#include "dataflow/ipc/process_executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dataflow/block_store.hpp"
#include "dataflow/rdd.hpp"
#include "drapid/pipeline.hpp"
#include "obs/counters.hpp"
#include "util/exec_policy.hpp"

namespace drapid {
namespace {

using StringRdd = Rdd<std::string, std::string>;

#define DRAPID_REQUIRE_FORK()                                         \
  do {                                                                \
    if (!process_executor_supported()) {                              \
      GTEST_SKIP() << "fork-based backend unavailable in this build " \
                      "(thread sanitizer)";                           \
    }                                                                 \
  } while (0)

EngineConfig base_config() {
  EngineConfig cfg;
  cfg.num_executors = 2;
  cfg.partitions_per_core = 4;
  return cfg;
}

EngineConfig process_config(std::size_t workers) {
  EngineConfig cfg = base_config();
  cfg.exec = ExecPolicy::process(workers, 2);
  return cfg;
}

// PR 7's fork-per-stage path, kept as the comparison oracle for the pool.
EngineConfig stage_config(std::size_t workers) {
  EngineConfig cfg = base_config();
  cfg.exec = ExecPolicy::process(workers, 2, PoolMode::kStage);
  return cfg;
}

double workers_alive_gauge() {
  for (const auto& [name, value] : obs::global_counters().gauges_snapshot()) {
    if (name == "engine.pool.workers_alive") return value;
  }
  return -1.0;
}

EngineConfig local_config() {
  EngineConfig cfg = base_config();
  cfg.exec = ExecPolicy::local(2);
  return cfg;
}

std::vector<std::pair<std::string, std::string>> make_pairs(std::size_t n) {
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs.emplace_back("key" + std::to_string(i % 97),
                       "value-" + std::to_string(i * 31));
  }
  return pairs;
}

// The full shuffle pipeline (map → partition → aggregate → join) run under
// one engine; used to compare backends end to end.
std::vector<std::pair<std::string, std::string>> run_pipeline(
    Engine& engine, std::size_t pairs = 600) {
  const auto rdd = parallelize(engine, make_pairs(pairs), 8);
  const auto upper = map_pairs(
      engine, rdd,
      [](const std::pair<std::string, std::string>& kv) {
        return std::make_pair(kv.first, kv.second + "!");
      },
      "xform");
  const HashPartitioner part{16};
  const auto shuffled = partition_by(engine, upper, part);
  const auto counts = aggregate_by_key(
      engine, shuffled, std::size_t{0},
      [](std::size_t& agg, const std::string&) { ++agg; },
      [](std::size_t& agg, std::size_t&& other) { agg += other; }, part);
  const auto joined = left_outer_join(engine, shuffled, counts, part);
  const auto flattened = map_pairs(
      engine, joined,
      [](const std::pair<std::string,
                         std::pair<std::string, std::optional<std::size_t>>>&
             kv) {
        return std::make_pair(
            kv.first, kv.second.first + "|" +
                          std::to_string(kv.second.second.value_or(0)));
      },
      "flatten");
  auto out = flattened.collect();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ProcessExecutor, EngineSelectsRequestedBackend) {
  Engine local(local_config());
  EXPECT_EQ(std::string(local.executor().name()), "local");
  if (!process_executor_supported()) {
    Engine fallback(process_config(2));
    EXPECT_EQ(std::string(fallback.executor().name()), "local")
        << "unsupported builds must silently fall back";
    return;
  }
  Engine process(process_config(3));
  EXPECT_EQ(std::string(process.executor().name()), "process");
  EXPECT_EQ(process.executor().workers(), 3u);
}

TEST(ProcessExecutor, ShufflePipelineMatchesLocalByteForByte) {
  DRAPID_REQUIRE_FORK();
  Engine local(local_config());
  const auto expected = run_pipeline(local);
  Engine process(process_config(2));
  const auto actual = run_pipeline(process);
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual, expected);
  // The process run really went over the wire: stages with codecs report
  // forked workers and shipped bytes.
  std::size_t staged_ipc = 0, staged_workers = 0;
  for (const auto& stage : process.metrics().stages) {
    staged_ipc += stage.ipc_bytes;
    staged_workers += stage.workers_used;
  }
  EXPECT_GT(staged_ipc, 0u);
  EXPECT_GT(staged_workers, 0u);
  EXPECT_EQ(process.metrics().total_ipc_bytes(), staged_ipc);
  EXPECT_EQ(process.metrics().total_worker_deaths(), 0u);
}

TEST(ProcessExecutor, InjectedTaskKillsMatchLocalRetryAccounting) {
  DRAPID_REQUIRE_FORK();
  const auto run = [](EngineConfig cfg) {
    cfg.faults.fail_once_stages = {"xform"};
    Engine engine(cfg);
    const auto rdd = parallelize(engine, make_pairs(200), 8);
    const auto out = map_pairs(
        engine, rdd,
        [](const std::pair<std::string, std::string>& kv) {
          return std::make_pair(kv.first, kv.second + "#");
        },
        "xform");
    StageMetrics stage;
    for (const auto& s : engine.metrics().stages) {
      if (s.name == "xform") stage = s;
    }
    return std::make_pair(out.collect(), stage);
  };
  const auto [local_out, local_stage] = run(local_config());
  const auto [process_out, process_stage] = run(process_config(2));
  EXPECT_EQ(process_out, local_out);
  // Every first attempt was killed by the injector in both backends; the
  // wire carries the child's attempt counters back unchanged.
  ASSERT_EQ(process_stage.tasks.size(), local_stage.tasks.size());
  for (std::size_t p = 0; p < local_stage.tasks.size(); ++p) {
    EXPECT_EQ(process_stage.tasks[p].attempts, 2u);
    EXPECT_EQ(process_stage.tasks[p].attempts, local_stage.tasks[p].attempts);
    EXPECT_EQ(process_stage.tasks[p].retry_cost,
              local_stage.tasks[p].retry_cost);
  }
  EXPECT_EQ(process_stage.total_retries(), local_stage.total_retries());
  EXPECT_EQ(process_stage.worker_deaths, 0u)
      << "injected task kills die inside the child, not the child itself";
}

TEST(ProcessExecutor, WorkerDeathRecoversByteIdentically) {
  DRAPID_REQUIRE_FORK();
  const auto run = [](EngineConfig cfg) {
    Engine engine(cfg);
    const auto rdd = parallelize(engine, make_pairs(400), 8);
    const auto out = map_pairs(
        engine, rdd,
        [](const std::pair<std::string, std::string>& kv) {
          return std::make_pair(kv.first + "/x", kv.second);
        },
        "xform");
    StageMetrics stage;
    for (const auto& s : engine.metrics().stages) {
      if (s.name == "xform") stage = s;
    }
    return std::make_pair(out.collect(), stage);
  };
  const auto [clean_out, clean_stage] = run(local_config());

  EngineConfig cfg = process_config(2);
  cfg.faults.kill_workers.push_back({"xform", 0});
  const auto [faulty_out, faulty_stage] = run(cfg);
  EXPECT_EQ(faulty_out, clean_out) << "worker death must be lossless";
  EXPECT_EQ(faulty_stage.worker_deaths, 1u);
  // Two workers forked up front plus one replacement incarnation.
  EXPECT_EQ(faulty_stage.workers_used, 3u);
  // The victim's unfinished tasks were re-run: at least one task shows a
  // charged attempt, and the stage counted the retries.
  std::size_t reattempted = 0;
  for (const auto& t : faulty_stage.tasks) reattempted += t.attempts > 1;
  EXPECT_GE(reattempted, 1u);
  EXPECT_GE(faulty_stage.total_retries(), reattempted);
  for (const auto& t : clean_stage.tasks) EXPECT_EQ(t.attempts, 1u);
}

TEST(ProcessExecutor, RepeatedDeathsExhaustTheAttemptBudget) {
  DRAPID_REQUIRE_FORK();
  EngineConfig cfg = process_config(2);
  cfg.max_task_attempts = 1;  // one death is already one charged attempt
  cfg.faults.kill_workers.push_back({"doomed", 0});
  Engine engine(cfg);
  const auto rdd = parallelize(engine, make_pairs(100), 8);
  EXPECT_THROW(map_pairs(
                   engine, rdd,
                   [](const std::pair<std::string, std::string>& kv) {
                     return kv;
                   },
                   "doomed"),
               TaskFailure);
}

TEST(ProcessExecutor, ChildExceptionsPropagateToTheParent) {
  DRAPID_REQUIRE_FORK();
  Engine engine(process_config(2));
  auto& stage = engine.begin_stage("buggy", 4);
  std::vector<std::vector<int>> sink(4);
  StageIO io;
  io.serialize = [](std::size_t) { return std::string(); };
  io.absorb = [&sink](std::size_t p, const std::string&) { sink[p].clear(); };
  try {
    engine.run_stage(stage,
                     [](TaskContext& ctx) {
                       if (ctx.partition() == 2) {
                         throw std::runtime_error("boom in child");
                       }
                     },
                     io);
    FAIL() << "the child's exception must cross the socket";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom in child"), std::string::npos);
  }
}

TEST(ProcessExecutor, StagesWithoutCodecsRunInProcess) {
  DRAPID_REQUIRE_FORK();
  // Spill and cache stages have no StageIO; they must keep running in the
  // parent (side effects visible, no forks) even on the process backend.
  Engine engine(process_config(2));
  auto& stage = engine.begin_stage("inproc", 4);
  std::atomic<int> touched{0};
  engine.run_stage(stage,
                   [&](TaskContext&) { touched.fetch_add(1); });
  EXPECT_EQ(touched.load(), 4);
  EXPECT_EQ(stage.workers_used, 0u);
  EXPECT_EQ(stage.ipc_bytes, 0u);
}

// ----------------------------------------------------- job-lifetime pool

TEST(WorkerPoolMode, JobAndStagePoolsMatchLocalByteForByte) {
  DRAPID_REQUIRE_FORK();
  // Large enough that data bytes dominate the pool's fixed control-frame
  // overhead: fork-per-stage ships every stage's full output back, the pool
  // ships the source in once, shuffles, and fetches only the final collect.
  const std::size_t kPairs = 6000;
  Engine local(local_config());
  const auto expected = run_pipeline(local, kPairs);

  Engine staged(stage_config(2));
  const auto stage_out = run_pipeline(staged, kPairs);
  EXPECT_EQ(stage_out, expected);

  Engine pooled(process_config(2));
  const auto job_out = run_pipeline(pooled, kPairs);
  EXPECT_EQ(job_out, expected);

  // The whole point of the pool: results stay resident in the workers, so
  // far fewer bytes cross the sockets than under fork-per-stage.
  const std::size_t stage_ipc = staged.metrics().total_ipc_bytes();
  const std::size_t job_ipc = pooled.metrics().total_ipc_bytes();
  EXPECT_GT(stage_ipc, 0u);
  EXPECT_GT(job_ipc, 0u);
  EXPECT_LT(job_ipc, stage_ipc);

  std::size_t reuses = 0, resident = 0;
  for (const auto& s : pooled.metrics().stages) {
    reuses += s.pool_reuses;
    resident += s.resident_bytes;
  }
  EXPECT_GT(reuses, 0u) << "later stages must reuse the forked workers";
  EXPECT_GT(resident, 0u) << "outputs must stay worker-resident";
  for (const auto& s : staged.metrics().stages) {
    EXPECT_EQ(s.pool_reuses, 0u) << s.name;
    EXPECT_EQ(s.resident_bytes, 0u) << s.name;
  }
}

TEST(WorkerPoolMode, PoolForksOnceForTheWholeJob) {
  DRAPID_REQUIRE_FORK();
  Engine engine(process_config(2));
  run_pipeline(engine);
  // Exactly the two pool workers are ever forked: the first pooled stage
  // spawns them (workers_used = 2) and every later stage reuses them
  // (workers_used = 0). Fork-per-stage would charge every stage.
  std::size_t forked = 0;
  for (const auto& s : engine.metrics().stages) forked += s.workers_used;
  EXPECT_EQ(forked, 2u);
  EXPECT_EQ(engine.metrics().total_worker_deaths(), 0u);
}

TEST(WorkerPoolMode, KillMidJobRebuildsResidentPartitions) {
  DRAPID_REQUIRE_FORK();
  Engine local(local_config());
  const auto expected = run_pipeline(local);

  // By the aggregate stage the shuffled partitions live inside the workers;
  // killing one destroys its resident state, and recovery must re-derive
  // the lost partitions from lineage before the job can finish.
  EngineConfig cfg = process_config(2);
  cfg.faults.kill_workers.push_back({"aggregate_by_key", 0});
  Engine engine(cfg);
  const auto out = run_pipeline(engine);
  EXPECT_EQ(out, expected) << "lost resident partitions must be rebuilt";
  EXPECT_GE(engine.metrics().total_worker_deaths(), 1u);
  std::size_t respawns = 0;
  for (const auto& s : engine.metrics().stages) respawns += s.worker_respawns;
  EXPECT_GE(respawns, 1u) << "a replacement worker must join the pool";
}

TEST(WorkerPoolMode, CleanShutdownDrainsThePool) {
  DRAPID_REQUIRE_FORK();
  {
    Engine engine(process_config(2));
    run_pipeline(engine);
    EXPECT_EQ(workers_alive_gauge(), 2.0)
        << "both pool workers alive while the engine lives";
  }
  // Engine destruction sends kShutdown and reaps every worker.
  EXPECT_EQ(workers_alive_gauge(), 0.0);
}

// ------------------------------------------------ kill_worker plan semantics

TEST(FaultInjectorKillWorker, FiresOncePerStagePrefixAndWorker) {
  FaultPlan plan;
  plan.kill_workers.push_back({"search", 1});
  const FaultInjector inj(plan);
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(inj.kill_worker("search", 1, 0));
  EXPECT_TRUE(inj.kill_worker("search:scan", 1, 0));  // prefix matches
  EXPECT_FALSE(inj.kill_worker("search", 0, 0));      // other worker
  EXPECT_FALSE(inj.kill_worker("load", 1, 0));        // other stage
  EXPECT_FALSE(inj.kill_worker("search", 1, 1))
      << "replacement incarnations must survive or recovery livelocks";
}

// --------------------------------------------------------- ExecPolicy shims

TEST(ExecPolicy, ShimsPreferNewKnobsOverLegacy) {
  ExecPolicy policy;  // defaults: local backend, unset widths
  EXPECT_EQ(policy.backend, ExecBackend::kLocal);
  EXPECT_EQ(policy.resolve_threads(3), 3u);  // legacy wins when unset
  EXPECT_EQ(policy.resolve_workers(5), 5u);
  policy = ExecPolicy::process(4, 2);
  EXPECT_EQ(policy.backend, ExecBackend::kProcess);
  EXPECT_EQ(policy.resolve_threads(8), 2u);  // new knob wins
  EXPECT_EQ(policy.resolve_workers(8), 4u);
  EXPECT_EQ(parse_exec_backend("local"), ExecBackend::kLocal);
  EXPECT_EQ(parse_exec_backend("process"), ExecBackend::kProcess);
  EXPECT_THROW(parse_exec_backend("cloud"), std::runtime_error);
  EXPECT_EQ(std::string(exec_backend_name(ExecBackend::kProcess)), "process");
}

TEST(ExecPolicy, PoolModeParsesAndDefaultsToJob) {
  EXPECT_EQ(ExecPolicy::process(2, 1).pool, PoolMode::kJob);
  EXPECT_EQ(parse_pool_mode("job"), PoolMode::kJob);
  EXPECT_EQ(parse_pool_mode("stage"), PoolMode::kStage);
  EXPECT_THROW(parse_pool_mode("forever"), std::runtime_error);
  EXPECT_EQ(std::string(pool_mode_name(PoolMode::kJob)), "job");
  EXPECT_EQ(std::string(pool_mode_name(PoolMode::kStage)), "stage");
}

// ------------------------------------------------- end-to-end acceptance

// The ISSUE.md acceptance bar: the full D-RAPID pipeline on the process
// backend produces a byte-identical ML file vs the local backend, including
// when a worker is killed mid-search.
TEST(ProcessExecutor, FullPipelineMatchesLocalIncludingUnderWorkerKill) {
  DRAPID_REQUIRE_FORK();
  PipelineConfig pipeline;
  pipeline.survey = SurveyConfig::gbt350drift();
  pipeline.survey.obs_length_s = 60.0;
  pipeline.survey.noise_events_per_second = 10.0;
  pipeline.num_observations = 4;
  pipeline.visibility = 0.08;
  pipeline.seed = 5;

  const auto run = [&pipeline](EngineConfig cfg) {
    Engine engine(cfg);
    BlockStore store(15);
    run_full_pipeline(engine, store, pipeline);
    auto ml = store.get("GBT350Drift.ml.csv");
    return std::make_pair(std::move(ml),
                          engine.metrics().total_worker_deaths());
  };

  EngineConfig local_cfg;
  local_cfg.num_executors = 4;
  local_cfg.exec = ExecPolicy::local(2);
  const auto [local_ml, local_deaths] = run(local_cfg);
  ASSERT_FALSE(local_ml.empty());
  EXPECT_EQ(local_deaths, 0u);

  EngineConfig process_cfg = local_cfg;
  process_cfg.exec = ExecPolicy::process(4, 2);
  const auto [process_ml, process_deaths] = run(process_cfg);
  EXPECT_EQ(process_ml, local_ml) << "process backend must be byte-identical";
  EXPECT_EQ(process_deaths, 0u);

  EngineConfig faulty_cfg = process_cfg;
  faulty_cfg.faults.kill_workers.push_back({"search", 2});
  const auto [faulty_ml, faulty_deaths] = run(faulty_cfg);
  EXPECT_EQ(faulty_ml, local_ml)
      << "a SIGKILLed search worker must not change the output";
  EXPECT_GE(faulty_deaths, 1u) << "the planned kill must actually fire";
}

}  // namespace
}  // namespace drapid
