#include "dataflow/fault.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace drapid {

namespace {

std::uint64_t fnv1a64_bytes(std::uint64_t h, const void* data,
                            std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a64_bytes(h, &v, sizeof(v));
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

double FaultInjector::site_draw(const char* kind, const std::string& name,
                                std::uint64_t a, std::uint64_t b) const {
  // Fold the site identity into one 64-bit key, then seed a fresh Rng from
  // it: one independent stream per site, stable across thread interleavings.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a64_u64(h, plan_.seed);
  h = fnv1a64_bytes(h, kind, std::char_traits<char>::length(kind));
  h = fnv1a64_bytes(h, name.data(), name.size());
  h = fnv1a64_u64(h, a);
  h = fnv1a64_u64(h, b);
  Rng rng(h);
  return rng.uniform();
}

bool FaultInjector::fail_task(const std::string& stage, std::size_t partition,
                              std::size_t attempt) const {
  if (attempt == 0) {
    for (const auto& prefix : plan_.fail_once_stages) {
      if (stage.rfind(prefix, 0) == 0) return true;
    }
  }
  if (plan_.task_failure_rate <= 0.0) return false;
  if (attempt >= plan_.max_injected_failures_per_task) return false;
  return site_draw("task", stage, partition, attempt) <
         plan_.task_failure_rate;
}

SpillFault FaultInjector::spill_fault(const std::string& cache,
                                      std::size_t partition) const {
  const auto listed = [partition](const std::vector<std::size_t>& v) {
    return std::find(v.begin(), v.end(), partition) != v.end();
  };
  if (listed(plan_.corrupt_spill_partitions)) return SpillFault::kCorrupt;
  if (listed(plan_.lose_spill_partitions)) return SpillFault::kLose;
  if (plan_.spill_fault_rate <= 0.0) return SpillFault::kNone;
  if (site_draw("spill", cache, partition, 0) >= plan_.spill_fault_rate) {
    return SpillFault::kNone;
  }
  return site_draw("spill-kind", cache, partition, 1) < 0.5
             ? SpillFault::kCorrupt
             : SpillFault::kLose;
}

bool FaultInjector::kill_worker(const std::string& stage, std::size_t worker,
                                std::size_t incarnation) const {
  if (incarnation != 0) return false;
  for (const auto& kill : plan_.kill_workers) {
    if (kill.worker == worker && stage.rfind(kill.stage, 0) == 0) return true;
  }
  return false;
}

std::vector<int> FaultInjector::dead_nodes(std::size_t num_nodes) const {
  std::vector<int> dead;
  for (int node : plan_.dead_nodes) {
    if (node >= 0 && static_cast<std::size_t>(node) < num_nodes) {
      dead.push_back(node);
    }
  }
  if (plan_.node_fault_rate > 0.0) {
    for (std::size_t n = 0; n < num_nodes; ++n) {
      if (site_draw("node", "", n, 0) < plan_.node_fault_rate) {
        dead.push_back(static_cast<int>(n));
      }
    }
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  return dead;
}

}  // namespace drapid
