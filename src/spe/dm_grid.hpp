// Trial-DM grids with DM-dependent spacing.
//
// Dedispersion searches step through trial DM values whose spacing widens as
// DM grows (coarser steps are tolerable when dispersion smearing already
// dominates). The paper's DMSpacing feature (Table 1) is exactly the local
// trial spacing, "increasing from 0.01 for low DM values to 2.00 for very
// high DM values" (§5.1.3); the grids here reproduce that range for both
// surveys.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace drapid {

/// One segment of a dedispersion plan: trials from dm_begin (inclusive) to
/// dm_end (exclusive) every `step` pc cm^-3.
struct DmPlanSegment {
  double dm_begin = 0.0;
  double dm_end = 0.0;
  double step = 0.0;
};

/// A materialized grid of trial DM values.
class DmGrid {
 public:
  /// Builds a grid from plan segments; segments must be contiguous and
  /// ascending, steps positive. Throws std::invalid_argument otherwise.
  explicit DmGrid(std::vector<DmPlanSegment> plan);

  std::size_t size() const { return trials_.size(); }
  double dm_at(std::size_t index) const { return trials_[index]; }
  const std::vector<double>& trials() const { return trials_; }

  double min_dm() const { return trials_.front(); }
  double max_dm() const { return trials_.back(); }

  /// Index of the trial nearest to `dm` (clamped to the grid range).
  std::size_t index_of(double dm) const;

  /// The local trial spacing at `dm` — the DMSpacing feature of Table 1.
  double spacing_at(double dm) const;

  const std::vector<DmPlanSegment>& plan() const { return plan_; }

  /// A grid covering exactly the trials of this grid that are strictly
  /// below `dm_end` — byte-for-byte a prefix of trials(), even when `dm_end`
  /// sits within one ulp of a trial value (the clip edge is resolved against
  /// the materialized trials, not re-derived from segment arithmetic). The
  /// plan segments are clipped alongside so spacing_at() stays consistent.
  /// Used to take a realistic fine-step slice of a survey plan for benches
  /// and dedup tests. Throws std::invalid_argument if no trial falls below
  /// `dm_end`.
  DmGrid prefix(double dm_end) const;

  /// Dedispersion plan modeled on the GBT 350 MHz drift-scan processing:
  /// fine 0.01 steps at low DM, widening to 2.0 at the top of the range.
  static DmGrid gbt350drift();

  /// Dedispersion plan modeled on PALFA (1.4 GHz, Galactic plane): same
  /// 0.01 → 2.0 spacing envelope over a deeper DM range.
  static DmGrid palfa();

  /// Dedispersion plan modeled on the FAST/CRAFTS drift-scan single-pulse
  /// processing (1.05–1.45 GHz): fine low-DM steps, 1500 pc cm^-3 ceiling.
  static DmGrid fast_crafts();

  /// Dedispersion plan modeled on an SKA-Mid band-2 single-pulse search:
  /// the deepest range here (3000 pc cm^-3) with the same 0.01 → 2.0
  /// spacing envelope.
  static DmGrid ska_mid();

 private:
  std::vector<DmPlanSegment> plan_;
  std::vector<double> trials_;
  std::vector<std::size_t> segment_first_index_;
};

}  // namespace drapid
