// FNV-1a-style streaming checksum shared by the on-disk record formats.
//
// The dataflow spill files (dataflow/spill.cpp) and the candidate-archive
// segments (serve/segment.cpp) use the same integrity scheme: a 64-bit
// byte-fold seeded with the FNV offset basis, covering every byte between
// the leading magic and the trailing checksum word. Folding an assembled
// buffer once is identical to folding each field as it is written, so
// writers can serialize first and checksum once.
#pragma once

#include <cstddef>
#include <cstdint>

namespace drapid {

inline constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ULL;

/// Folds `size` bytes into `h` (FNV-1a step per byte).
inline std::uint64_t checksum_fold(std::uint64_t h, const void* data,
                                   std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Folds one little-endian u64 (its in-memory bytes) into `h`.
inline std::uint64_t checksum_fold_u64(std::uint64_t h, std::uint64_t v) {
  return checksum_fold(h, &v, sizeof(v));
}

}  // namespace drapid
