#include "clustering/coincidence.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/flat_hash.hpp"

namespace drapid {

namespace {

/// Packs a (time cell, DM cell) pair into one 64-bit key. Time cells are
/// non-negative (event times are clamped at 0); DM cells are bounded by the
/// grid size, far inside 32 bits.
std::uint64_t cell_key(std::int64_t qt, std::int64_t qdm) {
  return (static_cast<std::uint64_t>(qt) << 32) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(qdm));
}

}  // namespace

CoincidenceResult coincidence_reject(
    const std::vector<const ObservationData*>& beams, const DmGrid& grid,
    const CoincidenceParams& params) {
  if (beams.size() > 64) {
    throw std::invalid_argument(
        "coincidence_reject: more than 64 beams — shard the pointing");
  }
  if (!(params.time_window_s > 0.0) || !(params.dm_window_trials > 0.0)) {
    throw std::invalid_argument(
        "coincidence_reject: windows must be positive");
  }
  if (params.min_beams < 2) {
    throw std::invalid_argument(
        "coincidence_reject: min_beams < 2 would reject every detection");
  }

  CoincidenceResult result;
  result.rejected.resize(beams.size());

  const auto qt_of = [&](double time_s) {
    return static_cast<std::int64_t>(
        std::floor(std::max(0.0, time_s) / params.time_window_s));
  };
  const auto qdm_of = [&](double dm) {
    return static_cast<std::int64_t>(
        std::floor(static_cast<double>(grid.index_of(dm)) /
                   params.dm_window_trials));
  };

  // Pass 1: which beams saw each cell.
  FlatHashMap<std::uint64_t, std::uint64_t> cells;
  for (std::size_t b = 0; b < beams.size(); ++b) {
    const std::uint64_t bit = std::uint64_t{1} << b;
    for (const auto& e : beams[b]->events) {
      cells.try_emplace(cell_key(qt_of(e.time_s), qdm_of(e.dm)), 0)
          .first->second |= bit;
    }
  }

  // Pass 2: flag events whose 3×3 neighbourhood unions enough beams. The
  // neighbourhood makes the test insensitive to cell-edge straddling: two
  // beams' views of the same burst land in adjacent cells at worst.
  for (std::size_t b = 0; b < beams.size(); ++b) {
    const auto& events = beams[b]->events;
    result.rejected[b].assign(events.size(), 0);
    result.num_events += events.size();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const std::int64_t qt = qt_of(events[i].time_s);
      const std::int64_t qdm = qdm_of(events[i].dm);
      std::uint64_t seen = 0;
      for (std::int64_t dt = -1; dt <= 1; ++dt) {
        for (std::int64_t dd = -1; dd <= 1; ++dd) {
          if (qt + dt < 0 || qdm + dd < 0) continue;
          if (const std::uint64_t* mask =
                  cells.find(cell_key(qt + dt, qdm + dd))) {
            seen |= *mask;
          }
        }
      }
      if (static_cast<std::size_t>(std::popcount(seen)) >= params.min_beams) {
        result.rejected[b][i] = 1;
        ++result.num_rejected;
      }
    }
  }
  return result;
}

std::vector<SinglePulseEvent> coincidence_filter(
    const ObservationData& beam, std::size_t beam_index,
    const CoincidenceResult& result) {
  const auto& flags = result.rejected.at(beam_index);
  std::vector<SinglePulseEvent> kept;
  kept.reserve(beam.events.size());
  for (std::size_t i = 0; i < beam.events.size(); ++i) {
    if (!flags[i]) kept.push_back(beam.events[i]);
  }
  return kept;
}

}  // namespace drapid
