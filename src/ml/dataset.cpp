#include "ml/dataset.hpp"

#include <stdexcept>

namespace drapid {
namespace ml {

Dataset::Dataset(std::vector<std::string> feature_names,
                 std::vector<std::string> class_names)
    : feature_names_(std::move(feature_names)),
      class_names_(std::move(class_names)) {}

void Dataset::add(std::span<const double> x, int y) {
  if (x.size() != num_features()) {
    throw std::invalid_argument("instance has " + std::to_string(x.size()) +
                                " features, dataset expects " +
                                std::to_string(num_features()));
  }
  if (y < 0 || static_cast<std::size_t>(y) >= num_classes()) {
    throw std::invalid_argument("class index out of range: " +
                                std::to_string(y));
  }
  values_.insert(values_.end(), x.begin(), x.end());
  labels_.push_back(y);
}

std::span<const double> Dataset::instance(std::size_t i) const {
  return {values_.data() + i * num_features(), num_features()};
}

std::vector<double> Dataset::feature_column(std::size_t f) const {
  std::vector<double> column;
  column.reserve(num_instances());
  for (std::size_t i = 0; i < num_instances(); ++i) {
    column.push_back(values_[i * num_features() + f]);
  }
  return column;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (int y : labels_) ++counts[static_cast<std::size_t>(y)];
  return counts;
}

Dataset Dataset::select_features(
    const std::vector<std::size_t>& features) const {
  std::vector<std::string> names;
  names.reserve(features.size());
  for (std::size_t f : features) {
    if (f >= num_features()) {
      throw std::invalid_argument("feature index out of range");
    }
    names.push_back(feature_names_[f]);
  }
  Dataset out(std::move(names), class_names_);
  std::vector<double> row(features.size());
  for (std::size_t i = 0; i < num_instances(); ++i) {
    const auto x = instance(i);
    for (std::size_t j = 0; j < features.size(); ++j) row[j] = x[features[j]];
    out.add(row, labels_[i]);
  }
  return out;
}

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  Dataset out(feature_names_, class_names_);
  for (std::size_t r : rows) {
    if (r >= num_instances()) {
      throw std::invalid_argument("row index out of range");
    }
    out.add(instance(r), labels_[r]);
  }
  return out;
}

}  // namespace ml
}  // namespace drapid
