// Tiny command-line option parser for the bench/example binaries.
//
// Supports "--name value" and "--name=value"; unknown flags raise an error so
// a typo in a sweep script fails loudly rather than silently running the
// default experiment.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace drapid {

class Options {
 public:
  /// `spec` maps option name -> default value; every recognized option must
  /// be declared there. Throws std::runtime_error on unknown or malformed
  /// arguments.
  Options(int argc, const char* const argv[],
          std::map<std::string, std::string> spec);

  const std::string& str(const std::string& name) const;
  double number(const std::string& name) const;
  long long integer(const std::string& name) const;
  bool flag(const std::string& name) const;  // "1"/"true"/"yes" are true

  /// True when the user explicitly supplied the option.
  bool provided(const std::string& name) const;

  /// Renders "--name default  (current)" lines for --help output.
  std::string describe() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> provided_;
};

}  // namespace drapid
