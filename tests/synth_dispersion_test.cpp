#include "synth/dispersion.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace drapid {
namespace {

TEST(DispersionDelay, MatchesHandbookFormula) {
  // Δt = 4.148808e3 * DM / f² seconds. DM = 100 at 1400 MHz → ~0.2117 s.
  EXPECT_NEAR(dispersion_delay_s(100.0, 1400.0), 4.148808e5 / (1400.0 * 1400.0),
              1e-12);
  EXPECT_DOUBLE_EQ(dispersion_delay_s(0.0, 350.0), 0.0);
}

TEST(DispersionDelay, LowerFrequencyDelaysMore) {
  EXPECT_GT(dispersion_delay_s(50.0, 350.0), dispersion_delay_s(50.0, 1400.0));
}

TEST(DispersionDelay, LinearInDm) {
  const double d1 = dispersion_delay_s(10.0, 400.0);
  const double d2 = dispersion_delay_s(20.0, 400.0);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-12);
}

TEST(Smearing, ZeroDmErrorMeansNoSmearing) {
  EXPECT_DOUBLE_EQ(smearing_s(0.0, 1400.0, 300.0), 0.0);
}

TEST(Smearing, SymmetricInDmErrorSign) {
  EXPECT_DOUBLE_EQ(smearing_s(5.0, 350.0, 100.0),
                   smearing_s(-5.0, 350.0, 100.0));
}

TEST(Smearing, WiderBandSmearsMore) {
  EXPECT_GT(smearing_s(5.0, 1400.0, 300.0), smearing_s(5.0, 1400.0, 100.0));
}

TEST(SnrDegradation, UnityAtTrueDm) {
  EXPECT_DOUBLE_EQ(snr_degradation(0.0, 5.0, 1400.0, 300.0), 1.0);
}

TEST(SnrDegradation, MonotoneDecreasingInDmError) {
  double prev = 1.0;
  for (double err = 0.5; err < 50.0; err += 0.5) {
    const double s = snr_degradation(err, 5.0, 1400.0, 300.0);
    ASSERT_LT(s, prev) << "at err=" << err;
    ASSERT_GT(s, 0.0);
    prev = s;
  }
}

TEST(SnrDegradation, SymmetricInSign) {
  EXPECT_DOUBLE_EQ(snr_degradation(3.0, 5.0, 1400.0, 300.0),
                   snr_degradation(-3.0, 5.0, 1400.0, 300.0));
}

TEST(SnrDegradation, NarrowPulsesAreMoreSensitiveToDmError) {
  // A narrower pulse loses S/N faster with DM error.
  EXPECT_LT(snr_degradation(2.0, 1.0, 1400.0, 300.0),
            snr_degradation(2.0, 20.0, 1400.0, 300.0));
}

TEST(SnrDegradation, LowFrequencySurveyHasNarrowerDmResponse) {
  // At 350 MHz the same DM error hurts far more than at 1400 MHz.
  EXPECT_LT(snr_degradation(1.0, 5.0, 350.0, 100.0),
            snr_degradation(1.0, 5.0, 1400.0, 300.0));
}

TEST(DmWidthAtLevel, BracketsTheLevelCrossing) {
  const double w = dm_width_at_level(0.5, 5.0, 1400.0, 300.0);
  EXPECT_GT(snr_degradation(w * 0.99, 5.0, 1400.0, 300.0), 0.5);
  EXPECT_LT(snr_degradation(w * 1.01, 5.0, 1400.0, 300.0), 0.5);
}

TEST(DmWidthAtLevel, RejectsBadLevels) {
  EXPECT_THROW(dm_width_at_level(0.0, 5.0, 1400.0, 300.0),
               std::invalid_argument);
  EXPECT_THROW(dm_width_at_level(1.0, 5.0, 1400.0, 300.0),
               std::invalid_argument);
}

class DegradationSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DegradationSweep, InUnitIntervalEverywhere) {
  const auto [width, freq] = GetParam();
  for (double err = 0.0; err < 100.0; err += 1.7) {
    const double s = snr_degradation(err, width, freq, freq * 0.2);
    ASSERT_GT(s, 0.0);
    ASSERT_LE(s, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndFreqs, DegradationSweep,
    ::testing::Combine(::testing::Values(0.5, 2.0, 10.0, 50.0),
                       ::testing::Values(350.0, 820.0, 1400.0)));

}  // namespace
}  // namespace drapid
