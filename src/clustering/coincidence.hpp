// Multi-beam coincidence rejection (pipeline stage 2½).
//
// A multi-beam receiver points its beams at disjoint patches of sky, so a
// genuine astrophysical pulse is seen by one beam (maybe two, at a beam
// overlap). Terrestrial interference enters through the sidelobes of *every*
// beam at once. The classic spatial filter — used by Parkes multibeam, FAST
// 19-beam, and every SKA pipeline design since — therefore rejects any
// detection that appears at compatible (DM, time) in `min_beams` or more
// beams.
//
// Implementation: events are quantized onto a (time, DM-trial) grid of cell
// size (time_window_s, dm_window_trials); a FlatHashMap from cell key to a
// 64-bit beam bitmask records which beams saw each cell. An event is
// coincident if the union of its 3×3 cell neighbourhood (so pairs straddling
// a cell edge still count) covers >= min_beams distinct beams. DM proximity
// is measured in trial-grid index units, like dbscan.hpp, so the window
// adapts to the grid's DM-dependent spacing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "spe/dm_grid.hpp"
#include "spe/spe_io.hpp"

namespace drapid {

struct CoincidenceParams {
  /// Half-width of the coincidence cell along time (seconds).
  double time_window_s = 0.05;
  /// Half-width along DM, in trial-index units.
  double dm_window_trials = 8.0;
  /// Events in >= this many distinct beams at compatible (DM, time) are
  /// flagged as interference. 2 would also reject beam-overlap pulses;
  /// 3 is the conventional threshold.
  std::size_t min_beams = 3;
};

struct CoincidenceResult {
  /// rejected[b][i] is nonzero iff event i of beam b is coincident RFI.
  std::vector<std::vector<std::uint8_t>> rejected;
  std::size_t num_rejected = 0;
  std::size_t num_events = 0;
};

/// Flags coincident events across one pointing's beams. `beams[b]` is beam
/// b's event list; at most 64 beams (the bitmask width — wider receivers
/// would shard pointings). Deterministic, single-threaded, O(events).
CoincidenceResult coincidence_reject(
    const std::vector<const ObservationData*>& beams, const DmGrid& grid,
    const CoincidenceParams& params = {});

/// Convenience: copies beam b's events with the flagged ones removed.
std::vector<SinglePulseEvent> coincidence_filter(
    const ObservationData& beam, std::size_t beam_index,
    const CoincidenceResult& result);

}  // namespace drapid
