// In-memory replicated block store — the HDFS stand-in.
//
// Files are split into fixed-size blocks, each replicated on `replication`
// distinct data nodes (chosen deterministically from the file name). The
// scheduler-facing part is the locality metadata: which nodes hold which
// block, so a task reading a block can run where the data lives — the
// property the paper's D-RAPID relies on when it reads the SPE and cluster
// files out of HDFS (Figure 2).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace drapid {

class BlockStore {
 public:
  struct BlockInfo {
    std::size_t offset = 0;  ///< byte offset within the file
    std::size_t size = 0;
    std::vector<int> replicas;  ///< data-node ids holding this block
  };

  /// `num_nodes` data nodes (paper: 15), blocks of `block_size` bytes,
  /// `replication` copies each (clamped to num_nodes).
  BlockStore(std::size_t num_nodes, std::size_t block_size = 1u << 20,
             std::size_t replication = 3);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t block_size() const { return block_size_; }

  /// Stores `contents` under `name`, replacing any existing file.
  void put(const std::string& name, std::string contents);

  bool exists(const std::string& name) const;
  void remove(const std::string& name);
  std::vector<std::string> list() const;

  /// Whole-file read; throws std::runtime_error if missing.
  const std::string& get(const std::string& name) const;
  std::size_t file_size(const std::string& name) const;

  /// Block layout of a file; throws if missing.
  const std::vector<BlockInfo>& blocks(const std::string& name) const;

  /// Reads one block's bytes.
  std::string read_block(const std::string& name, std::size_t block_index) const;

  /// Splits a file into line-aligned chunks, one per block (a reader that
  /// processes "its" block must see whole records, as Hadoop input formats
  /// do: a chunk starts after the first newline at/after the block start and
  /// runs through the first newline at/after the block end).
  std::vector<std::string> line_chunks(const std::string& name) const;

 private:
  struct File {
    std::string contents;
    std::vector<BlockInfo> layout;
  };
  const File& file_or_throw(const std::string& name) const;

  std::size_t num_nodes_;
  std::size_t block_size_;
  std::size_t replication_;
  std::map<std::string, File> files_;
};

}  // namespace drapid
