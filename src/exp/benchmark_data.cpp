#include "exp/benchmark_data.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "rapid/multithreaded.hpp"
#include "util/log.hpp"

namespace drapid {

std::vector<LabeledPulse> build_benchmark_pulses(
    const BenchmarkConfig& config) {
  std::vector<LabeledPulse> positives, negatives;
  SurveySimulator sim(config.survey, config.seed);
  const auto sources = sim.draw_sources();
  const DmGrid& grid = *config.survey.grid;

  for (std::size_t batch = 0; batch < config.max_batches; ++batch) {
    if (positives.size() >= config.target_positives &&
        negatives.size() >= config.target_negatives) {
      break;
    }
    const auto observations = sim.simulate_many(
        config.observations_per_batch, sources, config.visibility);
    for (const auto& obs : observations) {
      const auto clustering =
          dbscan_cluster(obs.data, grid, config.dbscan);
      const auto items = make_work_items(obs.data, clustering);
      for (const auto& item : items) {
        for (const auto& found :
             search_work_item(item, config.rapid, grid)) {
          // Ground-truth match (same rule as pipeline::label_records).
          LabeledPulse lp;
          lp.features = found.features;
          const double peak_dm = found.features[kSnrPeakDm];
          for (const auto& gt : obs.truth) {
            if (std::abs(gt.dm - peak_dm) <= 3.0 &&
                gt.time_s >= found.cluster.time_min - 0.2 &&
                gt.time_s <= found.cluster.time_max + 0.2) {
              lp.is_pulsar = true;
              lp.is_rrat = gt.type == SourceType::kRrat;
              break;
            }
          }
          if (lp.is_pulsar) {
            if (positives.size() < config.target_positives) {
              positives.push_back(lp);
            }
          } else if (negatives.size() < config.target_negatives) {
            negatives.push_back(lp);
          }
        }
      }
    }
    log_debug() << "benchmark batch " << batch << ": "
                << positives.size() << " positives, " << negatives.size()
                << " negatives";
  }
  if (positives.size() < config.target_positives ||
      negatives.size() < config.target_negatives) {
    log_warn() << "benchmark under target: " << positives.size() << "/"
               << config.target_positives << " positives, "
               << negatives.size() << "/" << config.target_negatives
               << " negatives";
  }

  std::vector<LabeledPulse> all = std::move(negatives);
  all.insert(all.end(), positives.begin(), positives.end());
  return all;
}

ml::Dataset make_alm_dataset(const std::vector<LabeledPulse>& pulses,
                             ml::AlmScheme scheme) {
  std::vector<std::string> feature_names(PulseFeatures::names().begin(),
                                         PulseFeatures::names().end());
  ml::Dataset data(std::move(feature_names), ml::alm_class_names(scheme));
  for (const auto& p : pulses) {
    const int label = ml::alm_label(
        scheme, p.is_pulsar, p.is_rrat, p.features[kSnrPeakDm],
        p.features[kAvgSnr], p.features[kSnrMax]);
    data.add(p.features.values, label);
  }
  return data;
}

}  // namespace drapid
