// Byte-identity tests for the presorted-column tree rewrite and the
// fold-parallel cross-validation, plus regression tests for the PR's
// satellite bugfixes (stratified fold rotation, SMOTE majority guard,
// transform timing, dataset views).
//
// `ReferenceTree` below is a frozen copy of the seed implementation's
// training loop (per-node row copies, std::sort per feature per node). The
// production DecisionTree must reproduce its trees *byte for byte* — same
// node array, same thresholds, same split-evaluation count — on adversarial
// inputs: heavily duplicated feature values, equal-gain ties under shuffled
// candidate order, and min_leaf boundary sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "ml/cross_validation.hpp"
#include "ml/random_forest.hpp"
#include "ml/smote.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {
namespace {

// ---------------------------------------------------------------------------
// Frozen seed implementation (reference).
// ---------------------------------------------------------------------------

class ReferenceTree {
 public:
  using Node = DecisionTree::Node;

  explicit ReferenceTree(TreeParams params, std::uint64_t seed)
      : params_(params), seed_(seed) {}

  void train(const Dataset& data) {
    nodes_.clear();
    depth_ = 0;
    split_evaluations_ = 0;
    std::vector<std::size_t> rows(data.num_instances());
    std::iota(rows.begin(), rows.end(), std::size_t{0});
    Rng rng(seed_);
    root_ = build(data, rows, 0, rng);
  }

  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return root_; }
  int depth() const { return depth_; }
  std::size_t split_evaluations() const { return split_evaluations_; }

 private:
  static double entropy(const std::vector<std::size_t>& counts,
                        std::size_t total) {
    if (total == 0) return 0.0;
    double h = 0.0;
    for (std::size_t c : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / static_cast<double>(total);
      h -= p * std::log2(p);
    }
    return h;
  }

  int build(const Dataset& data, std::vector<std::size_t>& rows, int depth,
            Rng& rng) {
    depth_ = std::max(depth_, depth);
    std::vector<std::size_t> counts(data.num_classes(), 0);
    for (std::size_t r : rows) {
      ++counts[static_cast<std::size_t>(data.label(r))];
    }
    const std::size_t n = rows.size();
    const int node_index = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_.back().label = static_cast<int>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());

    const bool pure = *std::max_element(counts.begin(), counts.end()) == n;
    if (pure || depth >= params_.max_depth || n < 2 * params_.min_leaf) {
      return node_index;
    }

    std::vector<std::size_t> features(data.num_features());
    std::iota(features.begin(), features.end(), std::size_t{0});
    if (params_.features_per_split > 0 &&
        params_.features_per_split < features.size()) {
      rng.shuffle(features);
      features.resize(params_.features_per_split);
    }

    const double parent_entropy = entropy(counts, n);
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_score = 0.0;
    std::vector<std::pair<double, int>> sorted;
    sorted.reserve(n);
    std::vector<std::size_t> left_counts(data.num_classes());
    for (std::size_t f : features) {
      sorted.clear();
      for (std::size_t r : rows) {
        sorted.emplace_back(data.instance(r)[f], data.label(r));
      }
      std::sort(sorted.begin(), sorted.end());
      std::fill(left_counts.begin(), left_counts.end(), 0);
      for (std::size_t i = 0; i + 1 < n; ++i) {
        ++left_counts[static_cast<std::size_t>(sorted[i].second)];
        if (sorted[i].first == sorted[i + 1].first) continue;
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < params_.min_leaf || nr < params_.min_leaf) continue;
        ++split_evaluations_;
        double hl = 0.0, hr = 0.0;
        {
          double h = 0.0;
          for (std::size_t c = 0; c < counts.size(); ++c) {
            const std::size_t lc = left_counts[c];
            if (lc) {
              const double p =
                  static_cast<double>(lc) / static_cast<double>(nl);
              h -= p * std::log2(p);
            }
          }
          hl = h;
          h = 0.0;
          for (std::size_t c = 0; c < counts.size(); ++c) {
            const std::size_t rc = counts[c] - left_counts[c];
            if (rc) {
              const double p =
                  static_cast<double>(rc) / static_cast<double>(nr);
              h -= p * std::log2(p);
            }
          }
          hr = h;
        }
        const double dn = static_cast<double>(n);
        double gain = parent_entropy - (static_cast<double>(nl) / dn) * hl -
                      (static_cast<double>(nr) / dn) * hr;
        if (params_.use_gain_ratio) {
          const double pl = static_cast<double>(nl) / dn;
          const double split_info =
              -pl * std::log2(pl) - (1.0 - pl) * std::log2(1.0 - pl);
          gain = split_info > 1e-12 ? gain / split_info : 0.0;
        }
        if (gain > best_score) {
          best_score = gain;
          best_feature = static_cast<int>(f);
          best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
    }

    if (best_feature < 0 || best_score < params_.min_gain) {
      return node_index;
    }

    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : rows) {
      const double v = data.instance(r)[static_cast<std::size_t>(best_feature)];
      (v <= best_threshold ? left_rows : right_rows).push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) {
      return node_index;
    }
    rows.clear();
    rows.shrink_to_fit();

    nodes_[static_cast<std::size_t>(node_index)].feature = best_feature;
    nodes_[static_cast<std::size_t>(node_index)].threshold = best_threshold;
    const int left = build(data, left_rows, depth + 1, rng);
    nodes_[static_cast<std::size_t>(node_index)].left = left;
    const int right = build(data, right_rows, depth + 1, rng);
    nodes_[static_cast<std::size_t>(node_index)].right = right;
    return node_index;
  }

  TreeParams params_;
  std::uint64_t seed_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int depth_ = 0;
  std::size_t split_evaluations_ = 0;
};

// Bitwise equality — EXPECT_DOUBLE_EQ would accept 4-ulp drift, which is
// exactly what these tests exist to rule out.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const DecisionTree& got, const ReferenceTree& want,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(got.root(), want.root());
  EXPECT_EQ(got.depth(), want.depth());
  EXPECT_EQ(got.split_evaluations(), want.split_evaluations());
  ASSERT_EQ(got.nodes().size(), want.nodes().size());
  for (std::size_t i = 0; i < got.nodes().size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    const auto& g = got.nodes()[i];
    const auto& w = want.nodes()[i];
    EXPECT_EQ(g.feature, w.feature);
    EXPECT_TRUE(same_bits(g.threshold, w.threshold))
        << g.threshold << " vs " << w.threshold;
    EXPECT_EQ(g.left, w.left);
    EXPECT_EQ(g.right, w.right);
    EXPECT_EQ(g.label, w.label);
  }
}

/// Gaussian class blobs with every value quantized to a coarse grid:
/// `levels` distinct values per feature forces long duplicate runs and
/// frequent equal-gain ties between features.
Dataset quantized_blobs(std::size_t n, std::size_t num_features,
                        std::size_t num_classes, int levels,
                        std::uint64_t seed) {
  std::vector<std::string> feature_names;
  for (std::size_t f = 0; f < num_features; ++f) {
    feature_names.push_back("f" + std::to_string(f));
  }
  std::vector<std::string> class_names;
  for (std::size_t c = 0; c < num_classes; ++c) {
    class_names.push_back("c" + std::to_string(c));
  }
  Dataset d(std::move(feature_names), std::move(class_names));
  Rng rng(seed);
  std::vector<double> x(num_features);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.below(num_classes));
    for (std::size_t f = 0; f < num_features; ++f) {
      const double raw = rng.normal(static_cast<double>(label), 1.5);
      x[f] = std::floor(raw * levels) / levels;
    }
    d.add(x, label);
  }
  return d;
}

// ---------------------------------------------------------------------------
// Tentpole (a): presorted training is byte-identical to the seed algorithm.
// ---------------------------------------------------------------------------

TEST(PresortedTree, J48MatchesReferenceOnDuplicateHeavyData) {
  // Coarse quantization (2–8 levels) makes duplicate runs and boundary ties
  // the common case rather than the exception.
  for (int levels : {2, 3, 8}) {
    for (std::size_t classes : {2u, 5u}) {
      const Dataset d = quantized_blobs(240, 6, classes, levels, 77);
      TreeParams params;  // J48 defaults: gain ratio, all features
      DecisionTree tree(params, 1);
      tree.train(d);
      ReferenceTree ref(params, 1);
      ref.train(d);
      expect_identical(tree, ref,
                       "levels=" + std::to_string(levels) +
                           " classes=" + std::to_string(classes));
    }
  }
}

TEST(PresortedTree, RandomTreeMatchesReferenceAcrossSeeds) {
  // features_per_split consumes the RNG (shuffle + resize) at every
  // splittable node; equality across seeds proves the rewrite draws the
  // stream at the same points and honours the shuffled candidate order in
  // the equal-gain tie-break.
  const Dataset d = quantized_blobs(300, 8, 3, 4, 31);
  TreeParams params;
  params.use_gain_ratio = false;  // plain IG (RandomTree behaviour)
  params.min_leaf = 1;
  params.features_per_split = 3;
  for (std::uint64_t seed : {1ull, 2ull, 9ull, 1234567ull}) {
    DecisionTree tree(params, seed);
    tree.train(d);
    ReferenceTree ref(params, seed);
    ref.train(d);
    expect_identical(tree, ref, "seed=" + std::to_string(seed));
  }
}

TEST(PresortedTree, MinLeafBoundariesMatchReference) {
  // Sizes straddling 2*min_leaf exercise the n < 2*min_leaf leaf check and
  // the per-candidate nl/nr >= min_leaf guards at their boundaries.
  for (std::size_t min_leaf : {1u, 2u, 5u, 20u}) {
    for (std::size_t n : {2 * min_leaf - 1, 2 * min_leaf, 2 * min_leaf + 3,
                          std::size_t{41}}) {
      if (n == 0) continue;
      const Dataset d = quantized_blobs(n, 3, 2, 3, 5 + min_leaf);
      TreeParams params;
      params.min_leaf = min_leaf;
      DecisionTree tree(params, 3);
      tree.train(d);
      ReferenceTree ref(params, 3);
      ref.train(d);
      expect_identical(tree, ref, "min_leaf=" + std::to_string(min_leaf) +
                                      " n=" + std::to_string(n));
    }
  }
}

TEST(PresortedTree, MaxDepthAndMinGainMatchReference) {
  const Dataset d = quantized_blobs(200, 5, 4, 4, 99);
  for (int max_depth : {1, 2, 4}) {
    TreeParams params;
    params.max_depth = max_depth;
    DecisionTree tree(params, 7);
    tree.train(d);
    ReferenceTree ref(params, 7);
    ref.train(d);
    expect_identical(tree, ref, "max_depth=" + std::to_string(max_depth));
  }
  TreeParams params;
  params.min_gain = 0.2;  // prunes most candidate splits
  DecisionTree tree(params, 7);
  tree.train(d);
  ReferenceTree ref(params, 7);
  ref.train(d);
  expect_identical(tree, ref, "min_gain=0.2");
}

TEST(PresortedTree, ConstantFeaturesAndSingleRowMatchReference) {
  // All-constant features: no candidate boundary anywhere, root stays leaf.
  Dataset d({"a", "b"}, {"x", "y"});
  for (int i = 0; i < 10; ++i) {
    d.add(std::vector<double>{1.0, 2.0}, i % 2);
  }
  TreeParams params;
  DecisionTree tree(params, 1);
  tree.train(d);
  ReferenceTree ref(params, 1);
  ref.train(d);
  expect_identical(tree, ref, "constant features");

  Dataset single({"a"}, {"x", "y"});
  single.add(std::vector<double>{0.5}, 1);
  DecisionTree tree1(params, 1);
  tree1.train(single);
  ReferenceTree ref1(params, 1);
  ref1.train(single);
  expect_identical(tree1, ref1, "single row");
}

TEST(PresortedTree, TrainBootstrapMatchesMaterializedSubset) {
  // train_bootstrap compresses the sample to (distinct row, multiplicity)
  // weights; it must still produce the tree of a plain train() over the
  // materialized duplicate-bearing subset.
  const Dataset d = quantized_blobs(150, 5, 3, 4, 13);
  const PresortedColumns presorted(d);
  Rng sample_rng(21);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::size_t> sample(d.num_instances());
    for (auto& s : sample) s = sample_rng.below(d.num_instances());
    TreeParams params;
    params.use_gain_ratio = false;
    params.min_leaf = 1;
    params.features_per_split = 2;
    DecisionTree fast(params, 5);
    fast.train_bootstrap(d, presorted, sample);
    ReferenceTree ref(params, 5);
    ref.train(d.subset(sample));
    expect_identical(fast, ref, "bootstrap round " + std::to_string(round));
  }
}

TEST(PresortedTree, TrainingOnViewMatchesReference) {
  // Dataset views (the CV fold representation) must feed training the same
  // bytes as a materialized copy would.
  const Dataset full = quantized_blobs(200, 4, 2, 3, 57);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < full.num_instances(); i += 2) rows.push_back(i);
  const Dataset view = full.subset(rows);
  ASSERT_TRUE(view.is_view());
  TreeParams params;
  DecisionTree tree(params, 11);
  tree.train(view);
  ReferenceTree ref(params, 11);
  ref.train(view);
  expect_identical(tree, ref, "view training");
}

TEST(PresortedTree, PredictBatchMatchesPredict) {
  const Dataset train = quantized_blobs(200, 5, 3, 4, 3);
  const Dataset test = quantized_blobs(80, 5, 3, 4, 4);
  DecisionTree tree(TreeParams{}, 1);
  tree.train(train);
  const auto batch = tree.predict_batch(test);
  ASSERT_EQ(batch.size(), test.num_instances());
  for (std::size_t i = 0; i < test.num_instances(); ++i) {
    EXPECT_EQ(batch[i], tree.predict(test.instance(i)));
  }

  RandomForest forest(ForestParams{}, 1);
  forest.train(train);
  const auto forest_batch = forest.predict_batch(test);
  ASSERT_EQ(forest_batch.size(), test.num_instances());
  for (std::size_t i = 0; i < test.num_instances(); ++i) {
    EXPECT_EQ(forest_batch[i], forest.predict(test.instance(i)));
  }
}

// ---------------------------------------------------------------------------
// Tentpole (b): fold-parallel CV is byte-identical for every thread count.
// ---------------------------------------------------------------------------

TEST(FoldParallelCv, IdenticalResultsForOneTwoAndEightThreads) {
  const Dataset d = quantized_blobs(260, 5, 2, 4, 101);
  const auto run = [&](std::size_t threads) {
    Rng rng(17);
    std::vector<int> predictions;
    const auto result = cross_validate(
        d, 5, [] { return std::make_unique<DecisionTree>(TreeParams{}, 1); },
        rng,
        // A transform drawing from the fold stream: catches any
        // thread-count-dependent RNG routing.
        [](const Dataset& train, Rng& fold_rng) {
          return apply_smote(train, SmoteParams{}, fold_rng);
        },
        &predictions, CvOptions{.threads = threads});
    return std::make_pair(result, predictions);
  };

  const auto [serial, serial_pred] = run(1);
  for (std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto [parallel, parallel_pred] = run(threads);
    EXPECT_EQ(parallel_pred, serial_pred);
    ASSERT_EQ(parallel.folds.size(), serial.folds.size());
    for (std::size_t f = 0; f < serial.folds.size(); ++f) {
      for (std::size_t a = 0; a < d.num_classes(); ++a) {
        for (std::size_t p = 0; p < d.num_classes(); ++p) {
          EXPECT_EQ(parallel.folds[f].confusion.count(static_cast<int>(a),
                                                      static_cast<int>(p)),
                    serial.folds[f].confusion.count(static_cast<int>(a),
                                                    static_cast<int>(p)))
              << "fold " << f << " cell (" << a << "," << p << ")";
        }
      }
    }
    EXPECT_EQ(parallel.pooled.total(), serial.pooled.total());
    EXPECT_EQ(parallel.pooled_binary().tp, serial.pooled_binary().tp);
    EXPECT_EQ(parallel.pooled_binary().fp, serial.pooled_binary().fp);
  }
}

TEST(FoldParallelCv, TimingFieldsArePopulated) {
  const Dataset d = quantized_blobs(150, 4, 2, 4, 7);
  Rng rng(3);
  const auto result = cross_validate(
      d, 3, [] { return std::make_unique<DecisionTree>(); }, rng,
      [](const Dataset& train, Rng&) { return train; });
  double train_sum = 0.0, test_sum = 0.0, transform_sum = 0.0;
  for (const auto& fold : result.folds) {
    EXPECT_GE(fold.train_seconds, 0.0);
    EXPECT_GE(fold.test_seconds, 0.0);
    EXPECT_GE(fold.transform_seconds, 0.0);
    train_sum += fold.train_seconds;
    test_sum += fold.test_seconds;
    transform_sum += fold.transform_seconds;
  }
  EXPECT_DOUBLE_EQ(result.total_train_seconds, train_sum);
  EXPECT_DOUBLE_EQ(result.total_test_seconds, test_sum);
  EXPECT_DOUBLE_EQ(result.total_transform_seconds, transform_sum);
}

TEST(FoldParallelCv, NoTransformMeansZeroTransformSeconds) {
  const Dataset d = quantized_blobs(120, 3, 2, 4, 9);
  Rng rng(5);
  const auto result =
      cross_validate(d, 3, [] { return std::make_unique<DecisionTree>(); },
                     rng);
  EXPECT_DOUBLE_EQ(result.total_transform_seconds, 0.0);
  for (const auto& fold : result.folds) {
    EXPECT_DOUBLE_EQ(fold.transform_seconds, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Satellite 1: stratified fold sizes under per-class remainders.
// ---------------------------------------------------------------------------

TEST(StratifiedFolds, RemainderClassesSpreadAcrossFolds) {
  // Five classes of 7 instances over k=5: every class has remainder 2.
  // Before the rotation fix all remainders landed on folds 0–1, giving fold
  // sizes {10,10,5,5,5}; rotation restores |fold| ∈ {⌊n/k⌋, ⌈n/k⌉} = {7}.
  const int k = 5;
  std::vector<int> labels;
  for (int c = 0; c < 5; ++c) {
    for (int i = 0; i < 7; ++i) labels.push_back(c);
  }
  Rng rng(1);
  const auto folds = stratified_folds(labels, 5, k, rng);
  const std::size_t n = labels.size();
  for (int f = 0; f < k; ++f) {
    const auto rows = rows_in_fold(folds, f, true);
    EXPECT_GE(rows.size(), n / k) << "fold " << f;
    EXPECT_LE(rows.size(), n / k + 1) << "fold " << f;
    // Per-class spread within one member: the stratification guarantee.
    std::vector<std::size_t> per_class(5, 0);
    for (auto r : rows) ++per_class[static_cast<std::size_t>(labels[r])];
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_GE(per_class[c], 7u / k) << "fold " << f << " class " << c;
      EXPECT_LE(per_class[c], 7u / k + 1) << "fold " << f << " class " << c;
    }
  }
}

TEST(StratifiedFolds, ManyRemainderClassesKeepFoldSizesTight) {
  // 13 classes of 11 instances, k=4 (remainder 3 per class): the worst case
  // for the old dealing, which put 13 extra members on each of folds 0–2
  // and none on fold 3. Fold sizes must stay within one of each other.
  const int k = 4;
  std::vector<int> labels;
  for (int c = 0; c < 13; ++c) {
    for (int i = 0; i < 11; ++i) labels.push_back(c);
  }
  Rng rng(42);
  const auto folds = stratified_folds(labels, 13, k, rng);
  std::vector<std::size_t> sizes(k, 0);
  for (int f : folds) ++sizes[static_cast<std::size_t>(f)];
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*hi - *lo, 1u) << "fold sizes must differ by at most one";
}

// ---------------------------------------------------------------------------
// Satellite 4: SMOTE majority guard and neighbour caching.
// ---------------------------------------------------------------------------

TEST(Smote, TargetRatioAboveOneLeavesMajorityAlone) {
  // target_ratio > 1 pushes the target above the majority size; the
  // majority class must not be oversampled toward its own inflated target.
  Dataset d({"x", "y"}, {"neg", "pos"});
  Rng data_rng(11);
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{data_rng.normal(0, 1), data_rng.normal(0, 1)},
          0);
  }
  for (int i = 0; i < 10; ++i) {
    d.add(std::vector<double>{data_rng.normal(4, 0.5),
                              data_rng.normal(4, 0.5)},
          1);
  }
  SmoteParams params;
  params.target_ratio = 1.5;
  Rng rng(6);
  const Dataset out = apply_smote(d, params, rng);
  const auto counts = out.class_counts();
  EXPECT_EQ(counts[0], 100u) << "majority class must stay untouched";
  EXPECT_EQ(counts[1], 150u);  // ceil(1.5 * 100)
}

TEST(Smote, CachedNeighboursStillInterpolateWithinClass) {
  // Every synthetic point lies on a segment between two same-class members,
  // so it stays inside the class's bounding box — true only if the cached
  // neighbour lists belong to the right member.
  Dataset d({"x"}, {"neg", "pos"});
  Rng data_rng(23);
  for (int i = 0; i < 60; ++i) {
    d.add(std::vector<double>{data_rng.normal(0, 1)}, 0);
  }
  std::vector<double> pos_values;
  for (int i = 0; i < 6; ++i) {
    const double v = 10.0 + data_rng.uniform();
    pos_values.push_back(v);
    d.add(std::vector<double>{v}, 1);
  }
  const auto [lo, hi] =
      std::minmax_element(pos_values.begin(), pos_values.end());
  Rng rng(8);
  const Dataset out = apply_smote(d, {}, rng);
  EXPECT_EQ(out.class_counts()[1], 60u);
  for (std::size_t i = d.num_instances(); i < out.num_instances(); ++i) {
    ASSERT_EQ(out.label(i), 1);
    EXPECT_GE(out.instance(i)[0], *lo);
    EXPECT_LE(out.instance(i)[0], *hi);
  }
}

// ---------------------------------------------------------------------------
// Dataset views (the fold representation the parallel CV relies on).
// ---------------------------------------------------------------------------

TEST(DatasetViews, SubsetIsAViewAndComposesMappings) {
  const Dataset full = quantized_blobs(40, 2, 2, 4, 19);
  const Dataset view = full.subset({5, 1, 9, 30, 2});
  EXPECT_TRUE(view.is_view());
  EXPECT_FALSE(full.is_view());
  ASSERT_EQ(view.num_instances(), 5u);
  EXPECT_EQ(view.label(0), full.label(5));
  EXPECT_TRUE(same_bits(view.instance(3)[1], full.instance(30)[1]));

  const Dataset nested = view.subset({4, 0});
  ASSERT_EQ(nested.num_instances(), 2u);
  EXPECT_EQ(nested.label(0), full.label(2));
  EXPECT_EQ(nested.label(1), full.label(5));

  const Dataset empty = view.subset({});
  EXPECT_EQ(empty.num_instances(), 0u);
  EXPECT_TRUE(empty.labels().empty());
}

TEST(DatasetViews, AddCopiesOnWriteWithoutDisturbingTheOriginal) {
  Dataset full = quantized_blobs(20, 2, 2, 4, 29);
  Dataset view = full.subset({3, 7});
  const int label3 = full.label(3);
  view.add(std::vector<double>{1.0, 2.0}, 1);  // materializes the view
  EXPECT_FALSE(view.is_view());
  ASSERT_EQ(view.num_instances(), 3u);
  EXPECT_EQ(view.label(0), label3);
  EXPECT_EQ(view.label(2), 1);
  // Original unchanged.
  EXPECT_EQ(full.num_instances(), 20u);
  EXPECT_EQ(full.label(3), label3);

  // Shared (non-view) copies also detach on write.
  Dataset copy = full;
  copy.add(std::vector<double>{0.0, 0.0}, 0);
  EXPECT_EQ(copy.num_instances(), 21u);
  EXPECT_EQ(full.num_instances(), 20u);
}

}  // namespace
}  // namespace ml
}  // namespace drapid
