// Minimal CSV reading/writing.
//
// The paper's pipeline exchanges every artifact as CSV-ish text files: SPE
// files emitted by the single-pulse search, cluster files from DBSCAN, and the
// ML feature files D-RAPID writes back to the distributed store. This module
// gives those formats one tested implementation.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace drapid {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Splits a single CSV line on `delim`. Supports double-quoted fields with
/// "" escapes; does not support embedded newlines (none of our formats use
/// them).
CsvRow parse_csv_line(std::string_view line, char delim = ',');

/// Reads all rows from a stream. Blank lines are skipped. If `skip_comments`
/// is true, lines starting with '#' are skipped (PRESTO single-pulse files
/// carry '#' headers).
std::vector<CsvRow> read_csv(std::istream& in, char delim = ',',
                             bool skip_comments = true);

/// Reads a CSV file from disk; throws std::runtime_error if unreadable.
std::vector<CsvRow> read_csv_file(const std::string& path, char delim = ',',
                                  bool skip_comments = true);

/// Serializes a row, quoting fields that contain the delimiter or quotes.
std::string format_csv_row(const CsvRow& row, char delim = ',');

/// Writes rows to a stream, one line per row.
void write_csv(std::ostream& out, const std::vector<CsvRow>& rows,
               char delim = ',');

/// Writes rows to a file; throws std::runtime_error on failure.
void write_csv_file(const std::string& path, const std::vector<CsvRow>& rows,
                    char delim = ',');

/// Parses a double, throwing std::runtime_error with the offending text on
/// failure — used so malformed survey files fail loudly with context.
double parse_double(std::string_view text);
long long parse_int(std::string_view text);

}  // namespace drapid
