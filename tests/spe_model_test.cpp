#include "spe/spe.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace drapid {
namespace {

ObservationId sample_obs() {
  ObservationId id;
  id.dataset = "PALFA";
  id.mjd = 55555.1234567;
  id.ra_deg = 290.25;
  id.dec_deg = 11.5;
  id.beam = 3;
  return id;
}

TEST(ObservationId, KeyRoundTrips) {
  const ObservationId id = sample_obs();
  const ObservationId back = ObservationId::from_key(id.key());
  EXPECT_EQ(back, id);
}

TEST(ObservationId, DistinctObservationsHaveDistinctKeys) {
  ObservationId a = sample_obs();
  ObservationId b = a;
  b.beam = 4;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.mjd += 0.001;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.dataset = "GBT350Drift";
  EXPECT_NE(a.key(), b.key());
}

TEST(ObservationId, MalformedKeyThrows) {
  EXPECT_THROW(ObservationId::from_key("only|three|parts"),
               std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|b|c|d|notanint"),
               std::runtime_error);
}

TEST(SinglePulseEvent, EqualityComparesAllFields) {
  SinglePulseEvent a{10.0, 6.5, 12.25, 4900, 2};
  SinglePulseEvent b = a;
  EXPECT_EQ(a, b);
  b.snr = 6.6;
  EXPECT_NE(a, b);
}

TEST(ClusterRecord, EqualityComparesObservation) {
  ClusterRecord a;
  a.obs = sample_obs();
  a.cluster_id = 7;
  a.num_spes = 19;
  ClusterRecord b = a;
  EXPECT_EQ(a, b);
  b.obs.beam = 9;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace drapid
