// Execution engine for the mini-dataflow library (the Spark stand-in).
//
// The engine owns the worker pool that runs one task per partition, the
// running job metrics, and the spill directory used when a dataset exceeds
// the configured executor memory (the mechanism behind the paper's
// one-executor cliff in Figure 4: "portions of the RDDs must be frequently
// swapped out to disk").
//
// Fault tolerance: every stage executes through run_stage, which retries a
// task attempt killed by the engine's FaultInjector up to max_task_attempts
// times (Spark's spark.task.maxFailures). A failed attempt is modeled as
// dying just before completion, so the wasted work lands in the task's
// attempts/retry_cost counters and the cluster cost model prices recovery
// time — reattempt scheduling plus exponential backoff — into the makespan.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "dataflow/executor.hpp"
#include "dataflow/fault.hpp"
#include "dataflow/metrics.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/exec_policy.hpp"
#include "util/thread_pool.hpp"

namespace drapid {

struct EngineConfig {
  /// Modeled executors; partition counts and memory scale with this.
  std::size_t num_executors = 4;
  /// Virtual cores per executor (paper: 2).
  std::size_t cores_per_executor = 2;
  /// In-memory budget per executor for cached RDDs. When a dataset exceeds
  /// num_executors * this, the driver spills it to disk (real file I/O).
  std::size_t executor_memory_bytes = 256ull << 20;
  /// Partitions assigned per core (paper's custom partitioner used 32).
  std::size_t partitions_per_core = 32;
  /// Worker threads actually used on this machine (independent of the
  /// modeled executor count; capped by hardware). Deprecated in favor of
  /// exec.threads_per_worker, which wins when set; this field remains the
  /// shim so pre-PR 7 call sites keep their exact pool size.
  std::size_t worker_threads = 4;
  /// Execution policy: which backend runs stage tasks (local in-process
  /// pool, or forked worker processes shuffling over Unix-domain sockets),
  /// how many worker processes (0 = num_executors — the modeled cluster
  /// finally gets real processes), and pool threads per worker (0 = the
  /// worker_threads shim above).
  ExecPolicy exec;
  /// Directory for spill files; empty selects the system temp directory.
  std::string spill_dir;
  /// Attempt budget per task (first run + retries). A task whose every
  /// attempt is killed fails the job with TaskFailure.
  std::size_t max_task_attempts = 4;
  /// Faults to inject into this engine's runs (none by default).
  FaultPlan faults;
  /// Tracer the engine records stage/task spans and fault instants into;
  /// nullptr selects obs::global_tracer(). Spans cost nothing while the
  /// tracer is disabled (the default until a bench passes --trace-out).
  obs::Tracer* tracer = nullptr;

  std::size_t total_cores() const { return num_executors * cores_per_executor; }
  std::size_t total_memory_bytes() const {
    return num_executors * executor_memory_bytes;
  }
  std::size_t default_partitions() const {
    return total_cores() * partitions_per_core;
  }
};

/// Per-task view handed to every run_stage body. Bundles what the old
/// `std::size_t partition` parameter made callers fish out of shared state:
/// the partition index, the task's metrics slot, the current attempt (the
/// fault-injection site), and the task's trace span for custom annotations.
class TaskContext {
 public:
  std::size_t partition() const { return partition_; }
  /// 0-based attempt currently executing; > 0 only after injected failures
  /// killed earlier attempts of this task.
  std::size_t attempt() const { return attempt_; }
  const std::string& stage_name() const { return stage_name_; }

  /// This task's metrics slot (same object as stage.tasks[partition()]).
  TaskMetrics& metrics() { return metrics_; }
  const TaskMetrics& metrics() const { return metrics_; }

  /// The task's trace span; inactive (all methods no-ops) when tracing is
  /// off. Bodies may attach args reported with the span's close event.
  obs::ScopedSpan& span() { return span_; }

  TaskContext(const TaskContext&) = delete;
  TaskContext& operator=(const TaskContext&) = delete;

 private:
  friend class Engine;
  friend class LocalExecutor;
  friend class ProcessExecutor;
  TaskContext(const std::string& stage_name, std::size_t partition,
              TaskMetrics& metrics, obs::ScopedSpan& span)
      : stage_name_(stage_name),
        partition_(partition),
        metrics_(metrics),
        span_(span) {}

  const std::string& stage_name_;
  std::size_t partition_;
  std::size_t attempt_ = 0;
  TaskMetrics& metrics_;
  obs::ScopedSpan& span_;
};

class Engine {
 public:
  explicit Engine(EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineConfig& config() const { return config_; }
  ThreadPool& pool() { return pool_; }
  const FaultInjector& faults() const { return faults_; }

  const JobMetrics& metrics() const { return metrics_; }
  JobMetrics& metrics() { return metrics_; }
  void reset_metrics() { metrics_.stages.clear(); }

  /// Appends a stage with `tasks` zeroed task slots and returns it. The
  /// reference stays valid for the engine's lifetime (until reset_metrics):
  /// stages live in a deque and begin_stage is serialized by a mutex, so
  /// stages begun later — including recomputation stages nested inside a
  /// running one — never invalidate it.
  StageMetrics& begin_stage(const std::string& name, std::size_t tasks);

  /// Runs body(ctx) for every task slot of `stage` through the configured
  /// executor backend, giving each task up to config().max_task_attempts
  /// attempts. Injected failures kill an attempt *at launch* (so a body
  /// observes either a complete prior run or none; bodies need not be
  /// idempotent mid-flight) and are retried with the wasted work recorded in
  /// attempts/retry_cost; genuine exceptions from the body propagate
  /// immediately, first one wins. The whole stage runs under a "stage" trace
  /// span and each task under a nested "task" span; retries emit
  /// "task.retry" instants.
  ///
  /// `io` is the stage's output contract (see executor.hpp). Stages that
  /// pass one may run their bodies in worker processes under the process
  /// backend; stages that omit it always run in-process on every backend.
  ///
  /// `plan` is the stage's pool plan (PR 10), or nullptr when the stage
  /// cannot ship by kernel+bytes. Only the job-pool backend reads it; on
  /// success it fills plan->out with the stage's worker-resident output set.
  void run_stage(StageMetrics& stage,
                 const std::function<void(TaskContext&)>& body,
                 const StageIO& io = {}, PoolStagePlan* plan = nullptr);

  /// The residency surface of a job-pool backend, nullptr on every other
  /// backend. Transformations probe this to decide whether building a
  /// PoolStagePlan is worth anything.
  PoolResidency* pool_residency() { return executor_->residency(); }

  /// The backend actually executing stage tasks (resolved from config().exec
  /// at construction; a TSan build downgrades process to local).
  Executor& executor() { return *executor_; }

  /// The tracer this engine records into (config().tracer or the global).
  obs::Tracer& tracer() { return tracer_; }

  /// Unique path for one spill file; files live until the engine dies.
  std::string next_spill_path();

 private:
  friend class LocalExecutor;
  friend class ProcessExecutor;
  friend class WorkerPool;

  EngineConfig config_;
  ThreadPool pool_;
  FaultInjector faults_;
  JobMetrics metrics_;
  std::mutex stages_mutex_;
  std::string spill_dir_;
  std::atomic<std::size_t> spill_counter_{0};
  obs::Tracer& tracer_;
  std::unique_ptr<Executor> executor_;
  // Registry lookups happen once here; task loops pay one relaxed add.
  obs::CounterRegistry::Counter& stages_counter_;
  obs::CounterRegistry::Counter& tasks_counter_;
  obs::CounterRegistry::Counter& retries_counter_;
  obs::CounterRegistry::Counter& failures_counter_;
  obs::CounterRegistry::Counter& stolen_counter_;
  obs::CounterRegistry::Counter& parks_counter_;
  obs::CounterRegistry::Counter& fastpath_counter_;
  obs::CounterRegistry::Counter& workers_forked_counter_;
  obs::CounterRegistry::Counter& worker_deaths_counter_;
  obs::CounterRegistry::Counter& ipc_bytes_counter_;
};

}  // namespace drapid
