// Queryable candidate archive: append-only, checksummed segments on disk
// with in-memory indexes and snapshot-isolated concurrent queries.
//
// Write model (single writer): candidates append into an in-memory pending
// batch that NO reader can observe; seal() writes the batch as one segment
// file (segment.hpp format), indexes it, and atomically publishes a new
// snapshot. Readers grab the current snapshot (a shared_ptr to an immutable
// list of immutable segments) and run the whole query against it — a
// concurrent seal neither blocks them nor mutates anything they can see, so
// torn or unsealed records are unobservable by construction.
//
// Read model: each sealed segment carries, besides its record store,
//   * a FlatHashMap from ObservationId::key() to the record indexes of that
//     observation, and
//   * secondary indexes — record indexes sorted by DM, by S/N and by
//     arrival time — so range predicates binary-search instead of scan.
// A query picks the most selective index its predicate binds, then filters
// the survivors against the full predicate. Results are canonically ordered
// (dm, time, snr, key), so any two routes to the same data — different
// index choices, ingest-concurrent vs post-hoc — compare equal.
//
// Opening an archive directory re-reads every sealed segment; one that
// fails validation is QUARANTINED (skipped, renamed *.quarantined, counted
// by `serve.segments_quarantined`) instead of failing the open — a corrupt
// batch costs its own records only.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/segment.hpp"
#include "spe/spe_io.hpp"
#include "util/flat_hash.hpp"

namespace drapid {
namespace serve {

/// Conjunctive query predicate; default-constructed fields match everything.
struct Query {
  /// Restrict to one observation (exact ObservationId::key()).
  std::string key;           ///< empty = any observation
  double dm_min = -1e300;    ///< inclusive
  double dm_max = 1e300;     ///< inclusive
  double min_snr = -1e300;   ///< inclusive
  double time_min = -1e300;  ///< inclusive, seconds
  double time_max = 1e300;   ///< inclusive, seconds
};

/// One immutable sealed segment with its indexes. Built once by the writer,
/// then shared read-only across snapshots.
class Segment {
 public:
  explicit Segment(std::vector<CandidateRecord> records);

  const std::vector<CandidateRecord>& records() const { return records_; }

  /// Appends every record matching `q` to `out` (unordered).
  void collect(const Query& q, std::vector<CandidateRecord>& out) const;

 private:
  std::vector<CandidateRecord> records_;
  /// ObservationId::key() -> indexes of that observation's records.
  FlatHashMap<std::string, std::vector<std::uint32_t>> by_key_;
  /// Record indexes sorted by the named field (ties in store order).
  std::vector<std::uint32_t> by_dm_;
  std::vector<std::uint32_t> by_snr_;
  std::vector<std::uint32_t> by_time_;
};

class CandidateArchive {
 public:
  /// Opens (creating the directory if needed) and loads every sealed
  /// segment, quarantining the ones that fail validation. Throws
  /// ArchiveError only for directory-level failures.
  explicit CandidateArchive(std::string dir);

  CandidateArchive(const CandidateArchive&) = delete;
  CandidateArchive& operator=(const CandidateArchive&) = delete;

  // --- writer side (single writer; not thread-safe against itself) --------

  /// Buffers a candidate in the pending batch. Invisible to queries until
  /// seal(). Throws std::invalid_argument for an id that cannot round-trip.
  void append(const ObservationId& obs, const SinglePulseEvent& event);
  void append(const CandidateRecord& rec) { append(rec.obs, rec.event); }

  /// Writes the pending batch as one segment file, indexes it, and
  /// publishes a new snapshot. No-op on an empty batch.
  void seal();

  // --- reader side (any thread, concurrent with the writer) ---------------

  /// All sealed records matching `q`, canonically ordered
  /// (dm, time_s, snr, key). Emits a `serve.query` span and counter.
  std::vector<CandidateRecord> query(const Query& q) const;

  /// Sealed records (pending appends excluded).
  std::size_t size() const;
  std::size_t num_segments() const;

  std::size_t pending() const { return pending_.size(); }
  const std::string& dir() const { return dir_; }
  /// Segment files skipped at open because they failed validation.
  const std::vector<std::string>& quarantined() const { return quarantined_; }

 private:
  struct Snapshot {
    std::vector<std::shared_ptr<const Segment>> segments;
    std::size_t total_records = 0;
  };

  std::shared_ptr<const Snapshot> snapshot() const;
  void publish(std::shared_ptr<const Segment> segment);

  std::string dir_;
  std::uint64_t next_segment_ = 0;      ///< next segment file number
  std::vector<CandidateRecord> pending_;  ///< writer-private, unsealed
  std::vector<std::string> quarantined_;

  mutable std::mutex snapshot_mutex_;  ///< guards the pointer swap only
  std::shared_ptr<const Snapshot> snapshot_;
};

/// Canonical result order shared with the tests' brute-force scans.
bool candidate_order(const CandidateRecord& a, const CandidateRecord& b);

}  // namespace serve
}  // namespace drapid
