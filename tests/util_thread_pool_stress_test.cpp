// Stress suite for the work-stealing pool, written to run under
// ThreadSanitizer (tools/check.sh adds it to the TSan pass): nested
// parallel_for storms, exceptions thrown from stolen tasks, and tasks
// submitted while the pool is busy draining — the interleavings where a
// Chase-Lev bookkeeping bug would surface as a race or a lost wakeup.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace drapid {
namespace {

TEST(ThreadPoolStress, NestedParallelForFromEveryWorker) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(8, [&](std::size_t) {
      pool.parallel_for(32, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  EXPECT_EQ(total.load(), 20u * 8u * 32u);
}

TEST(ThreadPoolStress, TripleNestingCompletesOnOneThread) {
  ThreadPool pool(1);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolStress, ExceptionsFromStolenTasksPropagateAndPoolSurvives) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    // Several chunks throw, from whichever thread stole them; the join must
    // rethrow exactly one error and leave the loop state fully retired.
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                     if (i % 17 == 3) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
    // The pool must stay fully usable after an aborted loop.
    std::atomic<std::size_t> count{0};
    pool.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 64u);
  }
}

TEST(ThreadPoolStress, SubmitFromInsideTasksDuringJoin) {
  // Tasks submit further tasks while the main thread is joining the loop
  // that spawned them — the join's help-drain path must run foreign tasks,
  // not just its own chunks.
  ThreadPool pool(3);
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  std::atomic<std::size_t> done{0};
  pool.parallel_for(32, [&](std::size_t) {
    auto f = pool.submit([&done] { done.fetch_add(1); });
    std::lock_guard lock(futures_mutex);
    futures.push_back(std::move(f));
  });
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 32u);
}

TEST(ThreadPoolStress, ExternalSubmittersRaceWithParallelFor) {
  ThreadPool pool(2);
  std::atomic<std::size_t> submitted_done{0};
  std::atomic<std::size_t> loop_done{0};
  std::vector<std::future<void>> futures(64);  // disjoint slot per submit
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 16; ++i) {
        futures[static_cast<std::size_t>(t) * 16 + i] =
            pool.submit([&submitted_done] { submitted_done.fetch_add(1); });
      }
    });
  }
  for (int round = 0; round < 8; ++round) {
    pool.parallel_for(64, [&](std::size_t) { loop_done.fetch_add(1); });
  }
  for (auto& th : submitters) th.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(submitted_done.load(), 64u);
  EXPECT_EQ(loop_done.load(), 8u * 64u);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedTasks) {
  // submit()'s contract: every returned future completes even when the pool
  // dies with tasks still queued.
  std::vector<std::future<void>> futures;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    futures.reserve(200);
    for (int i = 0; i < 200; ++i) {
      futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    }
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolStress, StatsAreMonotonicAndFastPathFires) {
  ThreadPool pool(4);
  SchedulerStats prev = pool.stats();
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(256, [](std::size_t) {});
    const SchedulerStats cur = pool.stats();
    EXPECT_GE(cur.tasks_stolen, prev.tasks_stolen);
    EXPECT_GE(cur.parks, prev.parks);
    EXPECT_GE(cur.fastpath_completions, prev.fastpath_completions);
    prev = cur;
  }
  // 256 iterations split into thread_count()*4 chunks: every chunk but the
  // last of each loop completes without the join mutex.
  EXPECT_GT(prev.fastpath_completions, 0u);
}

}  // namespace
}  // namespace drapid
