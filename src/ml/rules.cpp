#include "ml/rules.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "ml/discretize.hpp"

namespace drapid {
namespace ml {

bool Rule::matches(std::span<const double> x) const {
  for (const auto& c : conditions) {
    const double v = x[static_cast<std::size_t>(c.feature)];
    if (c.less_equal ? (v > c.threshold) : (v <= c.threshold)) return false;
  }
  return true;
}

namespace {

int majority_label(const Dataset& data, const std::vector<std::size_t>& rows) {
  std::vector<std::size_t> counts(data.num_classes(), 0);
  for (std::size_t r : rows) ++counts[static_cast<std::size_t>(data.label(r))];
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

// --- PART --------------------------------------------------------------------

PartClassifier::PartClassifier(PartParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void PartClassifier::train(const Dataset& data) {
  if (data.num_instances() == 0) {
    throw std::invalid_argument("cannot train PART on an empty dataset");
  }
  rules_.clear();
  std::vector<std::size_t> remaining(data.num_instances());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});
  default_label_ = majority_label(data, remaining);
  Rng rng(seed_);

  while (!remaining.empty() && rules_.size() < params_.max_rules) {
    const Dataset working = data.subset(remaining);
    DecisionTree tree(params_.tree, rng.split()());
    tree.train(working);

    // Find the leaf covering the most remaining instances.
    std::unordered_map<int, std::size_t> coverage;
    for (std::size_t i = 0; i < working.num_instances(); ++i) {
      ++coverage[tree.leaf_index(working.instance(i))];
    }
    int best_leaf = -1;
    std::size_t best_cover = 0;
    for (const auto& [leaf, cover] : coverage) {
      if (cover > best_cover || (cover == best_cover && leaf < best_leaf)) {
        best_leaf = leaf;
        best_cover = cover;
      }
    }
    if (best_leaf < 0) break;

    Rule rule;
    for (const auto& cond : tree.path_to_leaf(best_leaf)) {
      rule.conditions.push_back(
          Rule::Condition{cond.feature, cond.threshold, cond.less_equal});
    }
    rule.label = tree.leaf_label(best_leaf);
    rules_.push_back(rule);

    // Remove covered instances.
    std::vector<std::size_t> still;
    still.reserve(remaining.size() - best_cover);
    for (std::size_t r : remaining) {
      if (!rule.matches(data.instance(r))) still.push_back(r);
    }
    if (still.size() == remaining.size()) break;  // no progress: stop
    remaining = std::move(still);
  }
  if (!remaining.empty()) {
    default_label_ = majority_label(data, remaining);
  }
}

int PartClassifier::predict(std::span<const double> x) const {
  for (const auto& rule : rules_) {
    if (rule.matches(x)) return rule.label;
  }
  return default_label_;
}

// --- JRip --------------------------------------------------------------------

JripClassifier::JripClassifier(JripParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void JripClassifier::train(const Dataset& data) {
  if (data.num_instances() == 0) {
    throw std::invalid_argument("cannot train JRip on an empty dataset");
  }
  rules_.clear();
  const std::size_t n = data.num_instances();

  // Classes from rarest to most frequent; the most frequent is the default.
  const auto counts = data.class_counts();
  std::vector<std::size_t> class_order(data.num_classes());
  std::iota(class_order.begin(), class_order.end(), std::size_t{0});
  std::stable_sort(class_order.begin(), class_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return counts[a] < counts[b];
                   });
  default_label_ = static_cast<int>(class_order.back());

  std::vector<bool> covered(n, false);
  for (std::size_t ci = 0; ci + 1 < class_order.size(); ++ci) {
    const int cls = static_cast<int>(class_order[ci]);
    if (counts[static_cast<std::size_t>(cls)] == 0) continue;
    for (std::size_t r = 0; r < params_.max_rules_per_class; ++r) {
      // Instances still in play for growing this rule.
      std::vector<std::size_t> pool;
      std::size_t positives = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (covered[i]) continue;
        pool.push_back(i);
        positives += (data.label(i) == cls);
      }
      if (positives < params_.min_cover) break;

      Rule rule;
      rule.label = cls;
      // Grow: add the condition with the best FOIL gain until pure enough.
      while (rule.conditions.size() < params_.max_conditions_per_rule) {
        std::size_t pos = 0;
        for (std::size_t i : pool) pos += (data.label(i) == cls);
        const double purity =
            pool.empty() ? 0.0
                         : static_cast<double>(pos) /
                               static_cast<double>(pool.size());
        if (purity >= params_.target_purity) break;

        double best_gain = 0.0;
        Rule::Condition best_cond;
        std::vector<std::size_t> best_pool;
        const double log_p0 = std::log2(std::max(purity, 1e-12));
        for (std::size_t f = 0; f < data.num_features(); ++f) {
          // Candidate thresholds: quantiles of the feature over the pool.
          std::vector<double> column;
          column.reserve(pool.size());
          for (std::size_t i : pool) column.push_back(data.instance(i)[f]);
          const auto cuts =
              equal_frequency_cuts(column, params_.threshold_candidates);
          for (double cut : cuts) {
            for (bool le : {true, false}) {
              std::size_t kept_pos = 0, kept_total = 0;
              for (std::size_t i : pool) {
                const double v = data.instance(i)[f];
                const bool keep = le ? (v <= cut) : (v > cut);
                if (!keep) continue;
                ++kept_total;
                kept_pos += (data.label(i) == cls);
              }
              if (kept_pos < params_.min_cover || kept_total == 0) continue;
              const double p1 = static_cast<double>(kept_pos) /
                                static_cast<double>(kept_total);
              // FOIL gain: positives kept × (log purity gain).
              const double gain = static_cast<double>(kept_pos) *
                                  (std::log2(std::max(p1, 1e-12)) - log_p0);
              if (gain > best_gain) {
                best_gain = gain;
                best_cond = Rule::Condition{static_cast<int>(f), cut, le};
                best_pool.clear();
                for (std::size_t i : pool) {
                  const double v = data.instance(i)[f];
                  if (le ? (v <= cut) : (v > cut)) best_pool.push_back(i);
                }
              }
            }
          }
        }
        if (best_gain <= 0.0) break;
        rule.conditions.push_back(best_cond);
        pool = std::move(best_pool);
      }

      // Accept only rules that are precise enough and cover something new.
      std::size_t pos = 0;
      for (std::size_t i : pool) pos += (data.label(i) == cls);
      const double precision =
          pool.empty() ? 0.0
                       : static_cast<double>(pos) /
                             static_cast<double>(pool.size());
      if (rule.conditions.empty() || pos < params_.min_cover ||
          precision < params_.min_precision) {
        break;
      }
      rules_.push_back(rule);
      for (std::size_t i : pool) covered[i] = true;
    }
  }
}

int JripClassifier::predict(std::span<const double> x) const {
  for (const auto& rule : rules_) {
    if (rule.matches(x)) return rule.label;
  }
  return default_label_;
}

}  // namespace ml
}  // namespace drapid
