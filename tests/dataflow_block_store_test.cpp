#include "dataflow/block_store.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <stdexcept>

namespace drapid {
namespace {

std::string make_lines(std::size_t count, std::size_t width) {
  std::string text;
  for (std::size_t i = 0; i < count; ++i) {
    std::string line = "line" + std::to_string(i);
    line.resize(width, 'x');
    text += line;
    text += '\n';
  }
  return text;
}

TEST(BlockStore, PutGetRoundTrip) {
  BlockStore store(15);
  store.put("a.csv", "hello\nworld\n");
  EXPECT_TRUE(store.exists("a.csv"));
  EXPECT_EQ(store.get("a.csv"), "hello\nworld\n");
  EXPECT_EQ(store.file_size("a.csv"), 12u);
}

TEST(BlockStore, MissingFileThrows) {
  BlockStore store(3);
  EXPECT_THROW(store.get("nope"), std::runtime_error);
  EXPECT_THROW(store.blocks("nope"), std::runtime_error);
}

TEST(BlockStore, RemoveAndList) {
  BlockStore store(3);
  store.put("a", "1");
  store.put("b", "2");
  EXPECT_EQ(store.list().size(), 2u);
  store.remove("a");
  EXPECT_FALSE(store.exists("a"));
  EXPECT_EQ(store.list().size(), 1u);
}

TEST(BlockStore, SplitsIntoBlocksOfConfiguredSize) {
  BlockStore store(15, /*block_size=*/100);
  const std::string text = make_lines(50, 20);  // 50 * 21 = 1050 bytes
  store.put("big", text);
  const auto& layout = store.blocks("big");
  ASSERT_EQ(layout.size(), 11u);  // ceil(1050 / 100)
  std::size_t total = 0;
  for (std::size_t b = 0; b < layout.size(); ++b) {
    EXPECT_EQ(layout[b].offset, b * 100);
    EXPECT_LE(layout[b].size, 100u);
    total += layout[b].size;
  }
  EXPECT_EQ(total, text.size());
}

TEST(BlockStore, ReplicasAreDistinctNodes) {
  BlockStore store(15, 64, /*replication=*/3);
  store.put("f", make_lines(20, 30));
  for (const auto& block : store.blocks("f")) {
    std::set<int> nodes(block.replicas.begin(), block.replicas.end());
    EXPECT_EQ(nodes.size(), 3u);
    for (int n : nodes) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 15);
    }
  }
}

TEST(BlockStore, ReplicationClampedToNodeCount) {
  BlockStore store(2, 64, /*replication=*/5);
  store.put("f", "data");
  EXPECT_EQ(store.blocks("f")[0].replicas.size(), 2u);
}

TEST(BlockStore, ReadBlockReturnsExactSlice) {
  BlockStore store(4, 10);
  store.put("f", "0123456789abcdefghij");
  EXPECT_EQ(store.read_block("f", 0), "0123456789");
  EXPECT_EQ(store.read_block("f", 1), "abcdefghij");
  EXPECT_THROW(store.read_block("f", 2), std::runtime_error);
}

TEST(BlockStore, LineChunksReassembleExactly) {
  BlockStore store(15, /*block_size=*/64);
  const std::string text = make_lines(40, 17);
  store.put("f", text);
  const auto chunks = store.line_chunks("f");
  EXPECT_EQ(chunks.size(), store.blocks("f").size());
  std::string reassembled;
  for (const auto& c : chunks) reassembled += c;
  EXPECT_EQ(reassembled, text);
}

TEST(BlockStore, LineChunksNeverSplitALine) {
  BlockStore store(15, /*block_size=*/50);
  const std::string text = make_lines(30, 23);
  store.put("f", text);
  for (const auto& chunk : store.line_chunks("f")) {
    if (chunk.empty()) continue;
    EXPECT_EQ(chunk.back(), '\n') << "chunk must end on a record boundary";
    // Every line inside must be a full "lineN..." record.
    std::size_t start = 0;
    while (start < chunk.size()) {
      const auto nl = chunk.find('\n', start);
      ASSERT_NE(nl, std::string::npos);
      EXPECT_EQ(chunk.substr(start, 4), "line");
      start = nl + 1;
    }
  }
}

TEST(BlockStore, LineChunksHandleLinesLongerThanBlocks) {
  BlockStore store(4, /*block_size=*/8);
  const std::string text = "short\nthis-is-a-very-long-line\nend\n";
  store.put("f", text);
  const auto chunks = store.line_chunks("f");
  std::string reassembled;
  for (const auto& c : chunks) reassembled += c;
  EXPECT_EQ(reassembled, text);
}

TEST(BlockStore, EmptyFileHasOneEmptyBlock) {
  BlockStore store(3);
  store.put("empty", "");
  EXPECT_EQ(store.blocks("empty").size(), 1u);
  EXPECT_EQ(store.file_size("empty"), 0u);
  const auto chunks = store.line_chunks("empty");
  std::string reassembled;
  for (const auto& c : chunks) reassembled += c;
  EXPECT_TRUE(reassembled.empty());
}

TEST(BlockStore, PlacementIsDeterministic) {
  BlockStore a(15, 100), b(15, 100);
  const std::string text = make_lines(20, 40);
  a.put("f", text);
  b.put("f", text);
  const auto& la = a.blocks("f");
  const auto& lb = b.blocks("f");
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].replicas, lb[i].replicas);
  }
}

}  // namespace
}  // namespace drapid
