#include "dedisp/rfi_mitigation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace drapid {

const char* mitigation_policy_name(MitigationPolicy policy) {
  switch (policy) {
    case MitigationPolicy::kZeroDm: return "zerodm";
    case MitigationPolicy::kChannelMask: return "mask";
    case MitigationPolicy::kBoth: return "both";
    case MitigationPolicy::kOff: break;
  }
  return "off";
}

MitigationPolicy parse_mitigation_policy(const std::string& name) {
  if (name == "off") return MitigationPolicy::kOff;
  if (name == "zerodm") return MitigationPolicy::kZeroDm;
  if (name == "mask") return MitigationPolicy::kChannelMask;
  if (name == "both") return MitigationPolicy::kBoth;
  throw std::invalid_argument("unknown RFI mitigation policy '" + name +
                              "' (expected off|zerodm|mask|both)");
}

namespace {

void validate_mitigation_params(const RfiMitigationParams& params) {
  if (!(params.mask_sigma > 0.0) || !std::isfinite(params.mask_sigma)) {
    throw std::invalid_argument("rfi mitigation: mask_sigma must be a "
                                "positive finite number");
  }
  if (!(params.max_mask_fraction >= 0.0) || params.max_mask_fraction >= 1.0) {
    throw std::invalid_argument("rfi mitigation: max_mask_fraction must be "
                                "in [0, 1) — masking the whole band leaves "
                                "nothing to search");
  }
}

/// Robust deviation score: |value - median| in units of the band's robust
/// sigma. An exactly-constant background (sigma 0) scores any deviation as
/// infinite — a single hot channel in synthetic data is still deviant even
/// when every clean channel agrees bit for bit.
double deviation_score(double value, double median, double sigma) {
  const double dev = std::abs(value - median);
  if (sigma > 0.0) return dev / sigma;
  return dev > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
}

}  // namespace

std::vector<std::uint8_t> estimate_channel_mask(
    const Filterbank& fb, const RfiMitigationParams& params) {
  validate_mitigation_params(params);
  const std::size_t channels = fb.num_channels();
  const std::size_t n = fb.num_samples();
  auto& tracer = obs::global_tracer();
  obs::ScopedSpan span(tracer, "dedisp.rfi.mask_estimate", {}, "dedisp");

  // Per-channel first/second moments over time. A carrier inflates the
  // mean; impulsive or modulated interference inflates the variance — score
  // both against the band so either signature trips the mask.
  std::vector<double> means(channels), vars(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    const float* row = fb.channel_data(c);
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s) sum += row[s];
    const double mean = sum / static_cast<double>(n);
    double sq = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const double d = row[s] - mean;
      sq += d * d;
    }
    means[c] = mean;
    vars[c] = sq / static_cast<double>(n);
  }

  std::vector<double> workspace, select_scratch;
  const auto [mean_med, mean_sigma] =
      robust_stats(means, workspace, select_scratch);
  const auto [var_med, var_sigma] =
      robust_stats(vars, workspace, select_scratch);

  std::vector<double> scores(channels);
  std::vector<std::uint8_t> mask(channels, 0);
  std::size_t masked = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    scores[c] = std::max(deviation_score(means[c], mean_med, mean_sigma),
                         deviation_score(vars[c], var_med, var_sigma));
    if (scores[c] > params.mask_sigma) {
      mask[c] = 1;
      ++masked;
    }
  }

  // Cap the masked fraction: keep only the worst offenders, deterministic
  // tie-break toward lower channel index.
  const auto cap = static_cast<std::size_t>(
      params.max_mask_fraction * static_cast<double>(channels));
  if (masked > cap) {
    std::vector<std::size_t> flagged;
    flagged.reserve(masked);
    for (std::size_t c = 0; c < channels; ++c) {
      if (mask[c]) flagged.push_back(c);
    }
    std::stable_sort(flagged.begin(), flagged.end(),
                     [&](std::size_t a, std::size_t b) {
                       return scores[a] > scores[b];
                     });
    for (std::size_t i = cap; i < flagged.size(); ++i) mask[flagged[i]] = 0;
    masked = cap;
  }

  if (span.active()) {
    span.arg("channels", static_cast<std::int64_t>(channels));
    span.arg("masked", static_cast<std::int64_t>(masked));
  }
  obs::global_counters().add("dedisp.rfi.channels_masked",
                             static_cast<std::int64_t>(masked));
  return mask;
}

void zero_dm_subtract(float* data, std::size_t row_stride,
                      std::size_t channels, std::size_t begin, std::size_t end,
                      const std::uint8_t* mask) {
  std::size_t active = channels;
  if (mask != nullptr) {
    active = 0;
    for (std::size_t c = 0; c < channels; ++c) {
      if (mask[c] == 0) ++active;
    }
  }
  if (active == 0) return;
  const double inv = 1.0 / static_cast<double>(active);
  for (std::size_t s = begin; s < end; ++s) {
    // Ascending-channel double accumulation, rounded to float exactly once:
    // the same arithmetic at any blocking, so streaming chunks reproduce
    // the one-shot subtraction bit for bit.
    double sum = 0.0;
    for (std::size_t c = 0; c < channels; ++c) {
      if (mask == nullptr || mask[c] == 0) sum += data[c * row_stride + s];
    }
    const float mean = static_cast<float>(sum * inv);
    for (std::size_t c = 0; c < channels; ++c) {
      if (mask == nullptr || mask[c] == 0) data[c * row_stride + s] -= mean;
    }
  }
}

MitigationReport apply_rfi_mitigation(Filterbank& fb,
                                      const RfiMitigationParams& params,
                                      std::vector<std::uint8_t>& mask) {
  validate_mitigation_params(params);
  MitigationReport report;
  report.policy = params.policy;
  if (params.policy == MitigationPolicy::kOff) {
    mask.clear();
    return report;
  }
  auto& tracer = obs::global_tracer();
  obs::ScopedSpan span(tracer, "dedisp.rfi.mitigate",
                       mitigation_policy_name(params.policy), "dedisp");
  if (policy_masks_channels(params.policy)) {
    if (mask.empty()) mask = estimate_channel_mask(fb, params);
    if (mask.size() != fb.num_channels()) {
      throw std::invalid_argument(
          "rfi mitigation: channel mask has " + std::to_string(mask.size()) +
          " entries for " + std::to_string(fb.num_channels()) + " channels");
    }
    for (std::uint8_t m : mask) report.channels_masked += m != 0 ? 1 : 0;
  } else {
    mask.clear();
  }
  if (policy_zero_dm(params.policy)) {
    zero_dm_subtract(fb.channel_data(0), fb.num_samples(), fb.num_channels(),
                     0, fb.num_samples(), mask.empty() ? nullptr : mask.data());
    report.zero_dm_samples = fb.num_samples();
    obs::global_counters().add("dedisp.rfi.zero_dm_samples",
                               static_cast<std::int64_t>(fb.num_samples()));
  }
  if (span.active()) {
    span.arg("channels_masked",
             static_cast<std::int64_t>(report.channels_masked));
    span.arg("zero_dm_samples",
             static_cast<std::int64_t>(report.zero_dm_samples));
  }
  return report;
}

namespace detail {

std::vector<SinglePulseEvent> mitigated_single_pulse_search(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params) {
  SinglePulseSearchParams inner = params;
  inner.rfi.policy = MitigationPolicy::kOff;
  if (!policy_zero_dm(params.rfi.policy)) {
    // Mask-only: the masked shift plans never read the flagged channels, so
    // the data needs no cleaning (and no copy).
    if (inner.channel_mask.empty()) {
      inner.channel_mask = estimate_channel_mask(fb, params.rfi);
    }
    return single_pulse_search(fb, grid, inner);
  }
  Filterbank cleaned = fb;
  std::vector<std::uint8_t> mask = std::move(inner.channel_mask);
  apply_rfi_mitigation(cleaned, params.rfi, mask);
  inner.channel_mask = std::move(mask);
  return single_pulse_search(cleaned, grid, inner);
}

}  // namespace detail

}  // namespace drapid
