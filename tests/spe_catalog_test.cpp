#include "spe/catalog.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace drapid {
namespace {

SourceCatalog sample_catalog() {
  SourceCatalog cat;
  cat.add({"B1853+01", 284.0, 1.2, 96.7, 0.267, false});
  cat.add({"J1819-1458", 274.9, -14.9, 196.0, 4.26, true});
  cat.add({"J0000+00", 0.0, 0.0, 10.0, 1.0, false});
  return cat;
}

TEST(AngularSeparation, ZeroForSamePoint) {
  EXPECT_NEAR(angular_separation_deg(120.0, 30.0, 120.0, 30.0), 0.0, 1e-12);
}

TEST(AngularSeparation, KnownValues) {
  // Pole to equator = 90 degrees, any RA.
  EXPECT_NEAR(angular_separation_deg(0.0, 90.0, 123.0, 0.0), 90.0, 1e-9);
  // One degree of declination at fixed RA.
  EXPECT_NEAR(angular_separation_deg(10.0, 0.0, 10.0, 1.0), 1.0, 1e-9);
  // RA separation shrinks with cos(dec).
  EXPECT_NEAR(angular_separation_deg(0.0, 60.0, 2.0, 60.0), 1.0, 1e-2);
}

TEST(AngularSeparation, SymmetricAndBounded) {
  const double a = angular_separation_deg(10, 20, 200, -45);
  const double b = angular_separation_deg(200, -45, 10, 20);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 180.0);
}

TEST(SourceCatalog, FindByName) {
  const auto cat = sample_catalog();
  const auto hit = cat.find("J1819-1458");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->is_rrat);
  EXPECT_NEAR(hit->dm, 196.0, 1e-9);
  EXPECT_FALSE(cat.find("J9999+99").has_value());
}

TEST(SourceCatalog, ConeSearchOrdersByDistance) {
  SourceCatalog cat;
  cat.add({"near", 100.0, 10.0, 5.0, 0, false});
  cat.add({"far", 100.0, 12.0, 5.0, 0, false});
  cat.add({"outside", 100.0, 40.0, 5.0, 0, false});
  const auto hits = cat.cone_search(100.0, 10.5, 3.0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].name, "near");
  EXPECT_EQ(hits[1].name, "far");
}

TEST(SourceCatalog, CrossmatchRequiresPositionAndDm) {
  const auto cat = sample_catalog();
  // Right position, right DM.
  const auto hit = cat.crossmatch(284.1, 1.25, 97.0, 0.5, 3.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "B1853+01");
  // Right position, wrong DM.
  EXPECT_FALSE(cat.crossmatch(284.1, 1.25, 300.0, 0.5, 3.0).has_value());
  // Wrong position, right DM.
  EXPECT_FALSE(cat.crossmatch(30.0, 50.0, 97.0, 0.5, 3.0).has_value());
}

TEST(SourceCatalog, SaveLoadRoundTrip) {
  const auto cat = sample_catalog();
  std::stringstream io;
  cat.save(io);
  const auto back = SourceCatalog::load(io);
  ASSERT_EQ(back.size(), cat.size());
  const auto rrat = back.find("J1819-1458");
  ASSERT_TRUE(rrat.has_value());
  EXPECT_TRUE(rrat->is_rrat);
  EXPECT_NEAR(rrat->period_s, 4.26, 1e-9);
}

TEST(SourceCatalog, LoadRejectsMalformedRows) {
  std::istringstream in("header\nonly,three,fields\n");
  EXPECT_THROW(SourceCatalog::load(in), std::runtime_error);
}

TEST(SourceCatalog, EmptyCatalogBehaves) {
  SourceCatalog cat;
  EXPECT_EQ(cat.size(), 0u);
  EXPECT_TRUE(cat.cone_search(0, 0, 180).empty());
  EXPECT_FALSE(cat.crossmatch(0, 0, 10, 5, 5).has_value());
}

}  // namespace
}  // namespace drapid
