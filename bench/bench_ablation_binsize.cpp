// Ablation: Equation 1's dynamic bin size vs the DPG-era static bin size.
//
// §5.1.2: "a static bin size of 25 will put all SPEs in small clusters into
// one bin, making it impossible for D-RAPID to identify a peak". This bench
// injects pulses into clusters of controlled sizes and measures recovery
// under both policies, plus a weight sweep.
#include <iostream>

#include "obs/bench.hpp"
#include "rapid/search.hpp"
#include "synth/dispersion.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

using namespace drapid;

namespace {

/// One synthetic cluster of roughly `target_size` SPEs containing one pulse.
std::vector<SinglePulseEvent> make_cluster(std::size_t target_size, Rng& rng,
                                           double* true_dm) {
  *true_dm = rng.uniform(30.0, 80.0);
  const double peak = rng.uniform(8.0, 25.0);
  const double width = rng.uniform(2.0, 8.0);
  // Choose the trial step so the above-threshold span lands near the target
  // cluster size.
  const double half = dm_width_at_level(5.0 / peak < 0.999 ? 5.0 / peak : 0.5,
                                        width, 350.0, 100.0);
  const double step = 2.0 * half / static_cast<double>(target_size);
  std::vector<SinglePulseEvent> events;
  for (double dm = *true_dm - half * 1.5; dm <= *true_dm + half * 1.5;
       dm += step) {
    const double snr = peak * snr_degradation(dm - *true_dm, width, 350.0,
                                              100.0) +
                       rng.normal(0.0, 0.3);
    if (snr < 5.0) continue;
    SinglePulseEvent e;
    e.dm = dm;
    e.snr = snr;
    events.push_back(e);
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  // The extras map overrides the shared-spec seed: this ablation's published
  // numbers were produced with seed 7, not the suite-wide 2018.
  obs::BenchOptions bench(
      "bench_ablation_binsize", argc, argv, {{"trials", "300"}, {"seed", "7"}},
      "Ablation of Equation 1's dynamic histogram bin size against the "
      "DPG-era static bin size of 25.");
  if (bench.help()) return 0;
  const Options& opts = bench.opts();
  std::cout << "=== Ablation: Equation 1 dynamic bin size vs static 25 ===\n\n";
  const auto trials =
      static_cast<std::size_t>(bench.scaled(opts.integer("trials")));

  const std::vector<std::size_t> cluster_sizes = {6, 10, 16, 25, 60, 200, 1000};
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cluster size", "dynamic (Eq.1) recall", "static-25 recall",
                  "dynamic pulses/cluster", "static pulses/cluster"});

  for (std::size_t size : cluster_sizes) {
    Rng rng(bench.seed() + size);
    std::size_t dyn_hits = 0, static_hits = 0, dyn_pulses = 0, static_pulses = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      double true_dm = 0.0;
      const auto events = make_cluster(size, rng, &true_dm);
      if (events.size() < 3) continue;
      RapidParams dynamic;  // Equation 1 defaults
      RapidParams fixed;
      fixed.dynamic_bin_size = false;
      fixed.static_bin_size = 25;  // the [10] setting
      const auto check = [&](const RapidParams& params, std::size_t& hits,
                             std::size_t& pulses) {
        const auto found = rapid_search(events, params);
        pulses += found.size();
        for (const auto& p : found) {
          if (std::abs(events[p.peak].dm - true_dm) < 1.0) {
            ++hits;
            break;
          }
        }
      };
      check(dynamic, dyn_hits, dyn_pulses);
      check(fixed, static_hits, static_pulses);
    }
    rows.push_back(
        {std::to_string(size),
         format_number(static_cast<double>(dyn_hits) / trials, 3),
         format_number(static_cast<double>(static_hits) / trials, 3),
         format_number(static_cast<double>(dyn_pulses) / trials, 2),
         format_number(static_cast<double>(static_pulses) / trials, 2)});
    obs::Json row = obs::Json::object();
    row.set("cluster_size", static_cast<std::int64_t>(size));
    row.set("dynamic_recall", static_cast<double>(dyn_hits) / trials);
    row.set("static_recall", static_cast<double>(static_hits) / trials);
    row.set("dynamic_pulses_per_cluster",
            static_cast<double>(dyn_pulses) / trials);
    row.set("static_pulses_per_cluster",
            static_cast<double>(static_pulses) / trials);
    bench.report().add_result(std::move(row));
  }
  std::cout << render_table(rows)
            << "\n(expected: static 25 recovers ~nothing below ~25 SPEs — "
               "the Equation 1 motivation — and both recover large clusters)\n";
  bench.finish();
  return 0;
}
