// Structured run reports.
//
// A RunReport is the machine-readable record of one binary invocation:
// schema version, tool name, resolved config, per-stage dataflow rollups
// (JobReport, converted from the engine's JobMetrics by
// dataflow/obs_bridge), fault/retry events, counters, and free-form result
// rows. tools/report_diff compares two of them; validate_run_report() is
// the schema check shared by the tests and tools/trace_check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace drapid {
namespace obs {

/// One dataflow stage's rollup (mirrors the engine's StageMetrics totals).
struct StageReport {
  std::string name;
  std::uint64_t tasks = 0;
  std::uint64_t records_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t spill_bytes = 0;
  double compute_cost = 0.0;
  std::uint64_t retries = 0;  ///< attempts beyond the first, summed
  double retry_cost = 0.0;
  /// Work-stealing scheduler activity while the stage ran (deltas of the
  /// pool's SchedulerStats, see util/thread_pool.hpp).
  std::uint64_t tasks_stolen = 0;
  std::uint64_t parks = 0;
  std::uint64_t fastpath_completions = 0;
  /// Process-backend activity (all zero on the local backend or when the
  /// stage ran in-process): forked workers (replacements included), workers
  /// that died mid-stage, and result-frame bytes shipped over the sockets.
  std::uint64_t workers_used = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t ipc_bytes = 0;
  /// Job-lifetime pool activity (all zero under fork-per-stage or local):
  /// tasks served by an already-forked worker, bytes of output partitions
  /// left resident in workers, and replacement workers forked after deaths.
  std::uint64_t pool_reuses = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t worker_respawns = 0;
  /// Measured wall-clock seconds of the stage's execution, as stamped by
  /// Engine::run_stage — what cluster-model makespans are validated against.
  double wall_seconds = 0.0;

  Json to_json() const;
};

/// A discrete fault-tolerance event observed during a job: a task retry, a
/// spill-partition lineage recovery, a block-store replica failover, or a
/// worker-process death on the process backend.
struct ObsEvent {
  std::string kind;  ///< "retry" | "recover" | "failover" | "worker_death" |
                     ///< "worker_respawn"
  std::string stage;      ///< stage name, or "" when not stage-scoped
  std::int64_t partition = -1;  ///< -1 when not partition-scoped
  std::int64_t count = 1;

  Json to_json() const;
};

/// One engine job: its stages plus the fault events derived from them.
/// Totals are summed from `stages` at serialization time, so the exported
/// "totals" object is consistent with the stage rows by construction.
struct JobReport {
  std::string label;
  std::vector<StageReport> stages;
  std::vector<ObsEvent> events;

  Json to_json() const;
};

class RunReport {
 public:
  static constexpr std::int64_t kSchemaVersion = 1;

  explicit RunReport(std::string tool);

  /// Records one resolved config entry (typically every CLI option).
  void set_config(std::string key, Json value);

  /// Records a named top-level metric (e.g. "tracer_overhead_pct").
  void add_metric(std::string name, Json value);

  /// Appends a free-form result row (one benchmark point / trial).
  void add_result(Json row);

  void add_job(JobReport job);

  void set_wall_seconds(double seconds) { wall_seconds_ = seconds; }

  /// Snapshots a registry's counters and gauges into the report
  /// (overwrites a previous snapshot).
  void capture_counters(const CounterRegistry& registry);

  Json to_json() const;

  /// Pretty-prints to_json() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_file(const std::string& path) const;

 private:
  std::string tool_;
  Json config_ = Json::object();
  Json metrics_ = Json::object();
  Json results_ = Json::array();
  std::vector<JobReport> jobs_;
  std::vector<std::pair<std::string, std::int64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  double wall_seconds_ = 0.0;
};

/// Schema check for a parsed run report: version match, required fields,
/// well-typed stage rows, and per-job totals equal to the sum of that
/// job's stage rows. Returns "" when valid, else the first violation.
std::string validate_run_report(const Json& report);

}  // namespace obs
}  // namespace drapid
