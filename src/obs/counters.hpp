// Process-wide counter / gauge registry.
//
// Counters are monotonically increasing int64 event tallies (tasks run,
// retries, replica failovers); gauges are last-write-wins doubles (modeled
// makespan, memory budget). Counter increments are lock-free relaxed
// atomics on a stable address, so instrumented hot paths pay one atomic add;
// name lookup happens once, at registration.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace drapid {
namespace obs {

class CounterRegistry {
 public:
  class Counter {
   public:
    void add(std::int64_t delta = 1) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::int64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }
    const std::string& name() const { return name_; }

    /// Construct through CounterRegistry::counter(); public only because the
    /// registry's deque needs to emplace it.
    explicit Counter(std::string name) : name_(std::move(name)) {}

   private:
    friend class CounterRegistry;
    std::string name_;
    std::atomic<std::int64_t> value_{0};
  };

  /// Finds or creates; the returned reference is stable for the registry's
  /// lifetime (counters live in a deque and are never removed).
  Counter& counter(const std::string& name);

  /// One-shot increment (does the name lookup every call; prefer caching
  /// the counter() reference on hot paths).
  void add(const std::string& name, std::int64_t delta = 1) {
    counter(name).add(delta);
  }

  void set_gauge(const std::string& name, double value);

  /// Name-sorted snapshots.
  std::vector<std::pair<std::string, std::int64_t>> counters_snapshot() const;
  std::vector<std::pair<std::string, double>> gauges_snapshot() const;

  /// Zeroes every counter and drops every gauge (tests; registered Counter
  /// references stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::map<std::string, Counter*> index_;
  std::map<std::string, double> gauges_;
};

/// The registry the engine, spill layer, and block store report into.
CounterRegistry& global_counters();

}  // namespace obs
}  // namespace drapid
