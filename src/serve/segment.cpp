#include "serve/segment.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/checksum.hpp"

namespace drapid {

namespace {

constexpr std::uint64_t kSegmentMagic = 0x3147455353415244ULL;  // "DRASSEG1"
constexpr std::size_t kHeaderBytes = 16;  // magic + count
constexpr std::size_t kTrailerBytes = 8;  // checksum

[[noreturn]] void segment_fail(const std::string& file,
                               const std::string& why) {
  throw ArchiveError("archive segment " + file + ": " + why);
}

}  // namespace

void write_segment_file(const std::string& path,
                        const std::vector<CandidateRecord>& records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) segment_fail(path, "cannot open for writing");
  std::string buffer;
  const auto append_u64 = [&buffer](std::uint64_t v) {
    buffer.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_u64(kSegmentMagic);
  append_u64(records.size());
  for (const auto& rec : records) append_candidate_record(buffer, rec);
  const std::uint64_t checksum =
      checksum_fold(kChecksumSeed, buffer.data() + sizeof(kSegmentMagic),
                    buffer.size() - sizeof(kSegmentMagic));
  append_u64(checksum);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out) segment_fail(path, "write failed");
}

std::vector<CandidateRecord> read_segment_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) segment_fail(path, "missing or unreadable");
  std::error_code ec;
  const auto file_size =
      static_cast<std::size_t>(std::filesystem::file_size(path, ec));
  if (ec) segment_fail(path, "cannot stat: " + ec.message());
  if (file_size < kHeaderBytes + kTrailerBytes) {
    segment_fail(path, "truncated: " + std::to_string(file_size) +
                           " bytes is smaller than header + checksum");
  }
  std::string buffer(file_size, '\0');
  in.read(buffer.data(), static_cast<std::streamsize>(file_size));
  if (!in) segment_fail(path, "read failed");

  std::uint64_t magic = 0;
  std::memcpy(&magic, buffer.data(), sizeof(magic));
  if (magic != kSegmentMagic) {
    segment_fail(path, "bad header magic (not a segment, or corrupted)");
  }
  // Validate the checksum over the whole payload before trusting any length
  // prefix inside it: a corrupt prefix then cannot cause a bogus allocation
  // or a silently-short decode.
  const std::uint64_t expected =
      checksum_fold(kChecksumSeed, buffer.data() + sizeof(kSegmentMagic),
                    file_size - sizeof(kSegmentMagic) - kTrailerBytes);
  std::uint64_t stored = 0;
  std::memcpy(&stored, buffer.data() + file_size - kTrailerBytes,
              sizeof(stored));
  if (stored != expected) {
    segment_fail(path, "checksum mismatch (corrupted on disk)");
  }

  std::uint64_t count = 0;
  std::memcpy(&count, buffer.data() + sizeof(kSegmentMagic), sizeof(count));
  const std::size_t payload_end = file_size - kTrailerBytes;
  std::size_t offset = kHeaderBytes;
  std::vector<CandidateRecord> records;
  if (count > (payload_end - offset) / 4) {
    segment_fail(path, "record count " + std::to_string(count) +
                           " impossible for the payload size");
  }
  records.reserve(count);
  try {
    for (std::uint64_t i = 0; i < count; ++i) {
      records.push_back(
          decode_candidate_record(buffer.data(), payload_end, offset));
    }
  } catch (const std::exception& e) {
    segment_fail(path, e.what());
  }
  if (offset != payload_end) {
    segment_fail(path, std::to_string(payload_end - offset) +
                           " unexpected trailing payload bytes");
  }
  return records;
}

}  // namespace drapid
