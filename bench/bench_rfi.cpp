// Micro-benchmarks and quality harness for the RFI mitigation stage:
// zero-DM subtraction, channel-mask estimation, the mitigated DM sweep under
// every policy, multi-beam coincidence rejection, and the synth-ground-truth
// precision/recall evaluation the PR 9 acceptance bar is measured with
// (recall and false-positive counts surface as benchmark counters, so the
// JSON run report records detection quality next to the timings).
#include <benchmark/benchmark.h>

#include "micro_support.hpp"

#include "clustering/coincidence.hpp"
#include "dedisp/rfi_mitigation.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "synth/filterbank_survey.hpp"
#include "synth/survey.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

Filterbank dirty_filterbank(std::size_t channels) {
  FilterbankConfig cfg;
  cfg.num_channels = channels;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 10.0;
  Filterbank fb(cfg);
  Rng rng(1);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 3.0, 20.0);
  // Structured contamination: a burst train, two hot channels, one chirp's
  // worth of walking tone — the three families the mitigation stage targets.
  for (double t = 0.5; t < 10.0; t += 0.8) {
    fb.inject_broadband_impulse(t, 6.0);
  }
  fb.inject_rfi_tone(channels / 3, 8.0, 0.0, 10.0);
  fb.inject_rfi_tone(2 * channels / 3, 5.0, 2.0, 9.0);
  return fb;
}

void BM_ZeroDmSubtract(benchmark::State& state) {
  const auto src = dirty_filterbank(32);
  Filterbank fb = src;
  for (auto _ : state) {
    state.PauseTiming();
    fb = src;
    state.ResumeTiming();
    zero_dm_subtract(fb.channel_data(0), fb.num_samples(), fb.num_channels(),
                     0, fb.num_samples(), nullptr);
    benchmark::DoNotOptimize(fb.channel_data(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fb.num_samples() *
                                                    fb.num_channels()));
}
BENCHMARK(BM_ZeroDmSubtract);

void BM_EstimateChannelMask(benchmark::State& state) {
  const auto fb = dirty_filterbank(static_cast<std::size_t>(state.range(0)));
  const RfiMitigationParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_channel_mask(fb, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fb.num_samples() *
                                                    fb.num_channels()));
}
BENCHMARK(BM_EstimateChannelMask)->Arg(32)->Arg(128);

/// The mitigated sweep under each policy over the same dirty band — the
/// off row is the no-copy baseline, the other rows price the mitigation in.
void BM_MitigatedSweep(benchmark::State& state) {
  const auto fb = dirty_filterbank(32);
  const DmGrid grid = DmGrid::gbt350drift().prefix(10.0);
  SinglePulseSearchParams params;
  params.rfi.policy = static_cast<MitigationPolicy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(single_pulse_search(fb, grid, params));
  }
  state.SetLabel(mitigation_policy_name(params.rfi.policy));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size() *
                                                    fb.num_samples()));
}
BENCHMARK(BM_MitigatedSweep)
    ->Arg(static_cast<int>(MitigationPolicy::kOff))
    ->Arg(static_cast<int>(MitigationPolicy::kZeroDm))
    ->Arg(static_cast<int>(MitigationPolicy::kChannelMask))
    ->Arg(static_cast<int>(MitigationPolicy::kBoth));

/// Spatial filtering across a simulated 7-beam pointing's event lists.
void BM_CoincidenceReject(benchmark::State& state) {
  SurveyConfig cfg = SurveyConfig::ska_mid();
  cfg.obs_length_s = 5.0;  // full-length pointings dwarf the filter itself
  SurveySimulator sim(cfg, 17);
  ObservationId id;
  id.dataset = "ska_mid";
  const MultiBeamObservation pointing =
      sim.simulate_multibeam(id, {}, 7, /*shared_rfi_fraction=*/1.0);
  std::vector<const ObservationData*> beams;
  std::size_t events = 0;
  for (const SimulatedObservation& obs : pointing.beams) {
    beams.push_back(&obs.data);
    events += obs.data.events.size();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(coincidence_reject(beams, *cfg.grid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_CoincidenceReject);

/// The acceptance harness end to end: simulate a dirty filterbank survey,
/// sweep it under the given policy, and score detections against ground
/// truth. Counters carry recall and the false-positive count, so comparing
/// the off/both rows in the JSON report reproduces the PR 9 acceptance
/// numbers (mitigation must cut false positives without losing recall).
void BM_DirtySurveyEval(benchmark::State& state) {
  SurveyConfig cfg = SurveyConfig::ska_mid();
  cfg.name = "bench-dirty";
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.periodic_broadband_per_observation = 3.0;
  cfg.narrowband_carriers_per_observation = 3.0;
  cfg.swept_chirps_per_observation = 1.0;
  cfg.grid = std::make_shared<DmGrid>(DmGrid({{0.0, 80.0, 0.5}}));
  std::vector<SyntheticSource> sources;
  for (int i = 0; i < 3; ++i) {
    SyntheticSource src;
    src.name = "B" + std::to_string(i);
    src.type = SourceType::kRrat;
    src.dm = 20.0 + 15.0 * i;
    src.width_ms = 10.0;
    src.median_snr = 20.0;
    src.snr_sigma = 0.1;
    src.emission_rate = 1200.0;
    sources.push_back(src);
  }
  FilterbankSurveyOptions options;
  options.num_channels = 32;
  options.sample_time_ms = 2.0;
  options.obs_length_s = 8.0;
  options.keep_undetected_truth = true;
  options.rfi.policy = static_cast<MitigationPolicy>(state.range(0));

  // Same seeds the acceptance test aggregates over — a single draw is noisy
  // enough to invert the off/both false-positive ordering.
  DetectionEval total;
  for (auto _ : state) {
    total = DetectionEval{};
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Rng rng(seed);
      const SimulatedObservation obs = simulate_filterbank_observation(
          cfg, ObservationId{}, sources, rng, options);
      const DetectionEval eval = evaluate_detections(obs, options);
      total.truth_total += eval.truth_total;
      total.truth_detected += eval.truth_detected;
      total.events_total += eval.events_total;
      total.events_matched += eval.events_matched;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetLabel(mitigation_policy_name(options.rfi.policy));
  state.counters["recall"] = total.recall();
  state.counters["false_positives"] =
      static_cast<double>(total.events_total - total.events_matched);
}
BENCHMARK(BM_DirtySurveyEval)
    ->Arg(static_cast<int>(MitigationPolicy::kOff))
    ->Arg(static_cast<int>(MitigationPolicy::kZeroDm))
    ->Arg(static_cast<int>(MitigationPolicy::kChannelMask))
    ->Arg(static_cast<int>(MitigationPolicy::kBoth));

}  // namespace
}  // namespace drapid

DRAPID_MICRO_MAIN("bench_rfi",
                  "Micro-benchmarks for the RFI mitigation stage: zero-DM subtraction, channel masking, mitigated sweeps, coincidence rejection, and the precision/recall acceptance harness.")
