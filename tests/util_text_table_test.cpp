#include "util/text_table.hpp"

#include <gtest/gtest.h>

namespace drapid {
namespace {

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(1.500, 3), "1.5");
  EXPECT_EQ(format_number(2.000, 3), "2");
  EXPECT_EQ(format_number(0.125, 3), "0.125");
  EXPECT_EQ(format_number(-0.0, 3), "0");
}

TEST(RenderTable, AlignsColumnsAndUnderlinesHeader) {
  const auto text = render_table({{"name", "value"}, {"alpha", "1"},
                                  {"longer-name", "22"}});
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  // Header separator comes before data rows.
  EXPECT_LT(text.find("----"), text.find("alpha"));
}

TEST(RenderTable, EmptyInputIsEmpty) {
  EXPECT_TRUE(render_table({}).empty());
}

TEST(RenderBoxplots, ContainsMedianMarkersAndLabels) {
  Summary s;
  s.n = 5;
  s.min = 0;
  s.q1 = 1;
  s.median = 2;
  s.q3 = 3;
  s.max = 4;
  const auto text = render_boxplots("title", {{"rowA", s}, {"rowB", s}});
  EXPECT_NE(text.find("title"), std::string::npos);
  EXPECT_NE(text.find("rowA"), std::string::npos);
  EXPECT_NE(text.find('M'), std::string::npos);
  EXPECT_NE(text.find("med=2"), std::string::npos);
}

TEST(RenderBoxplots, DegenerateAllEqualDistributionDoesNotCrash) {
  Summary s;
  s.n = 3;
  s.min = s.q1 = s.median = s.q3 = s.max = 7.0;
  const auto text = render_boxplots("flat", {{"r", s}});
  EXPECT_NE(text.find('M'), std::string::npos);
}

TEST(RenderSeries, OneRowPerSeries) {
  const auto text = render_series("time(s)", {"1", "5", "10"},
                                  {{"drapid", {10, 4, 3}},
                                   {"multithreaded", {20, 12, 11}}});
  EXPECT_NE(text.find("drapid"), std::string::npos);
  EXPECT_NE(text.find("multithreaded"), std::string::npos);
  EXPECT_NE(text.find("time(s)"), std::string::npos);
}

}  // namespace
}  // namespace drapid
