// SurveyService: chunked ingest through the streaming sweep into the
// archive, queried concurrently — results equal a post-hoc full scan built
// from one-shot searches.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "dedisp/single_pulse_search.hpp"
#include "obs/counters.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("drapid_svc_") + info->test_suite_name() + "_" +
            info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

FilterbankConfig small_config() {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.num_channels = 16;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 6.0;
  return cfg;
}

ObservationId obs_id(int beam) {
  ObservationId id;
  id.dataset = "GBT350";
  id.mjd = 55000.5;
  id.ra_deg = 123.0;
  id.dec_deg = -1.25;
  id.beam = beam;
  return id;
}

Filterbank observation(const FilterbankConfig& cfg, std::uint64_t seed) {
  Filterbank fb(cfg);
  Rng rng(seed);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(1.0 + 0.5 * static_cast<double>(seed % 5), 40.0, 4.0, 20.0);
  return fb;
}

std::int64_t counter(const char* name) {
  for (const auto& [key, value] :
       obs::global_counters().counters_snapshot()) {
    if (key == name) return value;
  }
  return 0;
}

TEST(SurveyService, IngestedCandidatesEqualPostHocFullScan) {
  TempDir dir;
  const FilterbankConfig cfg = small_config();
  const DmGrid grid({{30.0, 50.0, 0.25}});
  SurveyServiceConfig config;
  config.filterbank = cfg;
  config.chunk_samples = 700;  // forces several chunks per observation

  constexpr int kObservations = 4;
  std::vector<CandidateRecord> expected;
  {
    SurveyService service(dir.str(), grid, config);
    for (int i = 0; i < kObservations; ++i) {
      service.submit(obs_id(i), observation(cfg, 100 + i));
    }
    service.drain();
    EXPECT_EQ(service.observations_ingested(),
              static_cast<std::size_t>(kObservations));
    EXPECT_EQ(service.ingest_errors(), 0u);
    EXPECT_EQ(service.archive().num_segments(),
              static_cast<std::size_t>(kObservations));

    // Post-hoc reference: one-shot search per observation.
    for (int i = 0; i < kObservations; ++i) {
      const Filterbank fb = observation(cfg, 100 + i);
      for (const auto& event :
           single_pulse_search(fb, grid, config.search)) {
        expected.push_back({obs_id(i), event});
      }
    }
    ASSERT_FALSE(expected.empty());
    std::sort(expected.begin(), expected.end(), candidate_order);
    EXPECT_EQ(service.query({}), expected);

    // Per-observation retrieval by key.
    Query by_key;
    by_key.key = obs_id(2).key();
    std::vector<CandidateRecord> want;
    for (const auto& r : expected) {
      if (r.obs == obs_id(2)) want.push_back(r);
    }
    EXPECT_EQ(service.query(by_key), want);
  }
  // The archive persists: reopening the service sees every candidate.
  SurveyService reopened(dir.str(), grid, config);
  EXPECT_EQ(reopened.query({}), expected);
}

TEST(SurveyService, ChunkSizeDoesNotChangeResults) {
  TempDir dir_a, dir_b;
  const FilterbankConfig cfg = small_config();
  const DmGrid grid({{35.0, 45.0, 0.5}});
  SurveyServiceConfig config;
  config.filterbank = cfg;

  config.chunk_samples = 0;  // whole observation in one chunk
  SurveyService one_shot(dir_a.str(), grid, config);
  config.chunk_samples = 97;  // many ragged chunks
  SurveyService chunked(dir_b.str(), grid, config);

  for (int i = 0; i < 2; ++i) {
    one_shot.submit(obs_id(i), observation(cfg, 7 + i));
    chunked.submit(obs_id(i), observation(cfg, 7 + i));
  }
  one_shot.drain();
  chunked.drain();
  const auto a = one_shot.query({});
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, chunked.query({}));
}

TEST(SurveyService, GeometryMismatchCountsAsIngestError) {
  TempDir dir;
  const FilterbankConfig cfg = small_config();
  const DmGrid grid({{35.0, 45.0, 0.5}});
  SurveyServiceConfig config;
  config.filterbank = cfg;
  SurveyService service(dir.str(), grid, config);

  FilterbankConfig other = cfg;
  other.num_channels = 8;
  const std::int64_t errors_before = counter("serve.ingest_errors");
  service.submit(obs_id(0), Filterbank(other));
  service.submit(obs_id(1), observation(cfg, 3));
  service.drain();
  EXPECT_EQ(service.ingest_errors(), 1u);
  EXPECT_EQ(service.observations_ingested(), 1u);
  EXPECT_EQ(counter("serve.ingest_errors") - errors_before, 1);
  // The healthy observation still made it in.
  EXPECT_EQ(service.archive().num_segments(), 1u);
}

TEST(SurveyService, EmitsIngestCountersAndGauge) {
  TempDir dir;
  const FilterbankConfig cfg = small_config();
  const DmGrid grid({{35.0, 45.0, 0.5}});
  SurveyServiceConfig config;
  config.filterbank = cfg;

  const std::int64_t obs_before = counter("serve.observations");
  const std::int64_t cand_before = counter("serve.candidates");
  SurveyService service(dir.str(), grid, config);
  service.submit(obs_id(0), observation(cfg, 1));
  service.drain();
  EXPECT_EQ(counter("serve.observations") - obs_before, 1);
  EXPECT_EQ(counter("serve.candidates") - cand_before,
            static_cast<std::int64_t>(service.archive().size()));
  bool saw_gauge = false;
  for (const auto& [key, value] : obs::global_counters().gauges_snapshot()) {
    if (key == "serve.queue_depth") saw_gauge = true;
  }
  EXPECT_TRUE(saw_gauge);
}

}  // namespace
}  // namespace serve
}  // namespace drapid
