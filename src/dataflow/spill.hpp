// Memory-budgeted caching of string-pair RDDs with real spill-to-disk.
//
// Spark keeps RDDs in executor memory and swaps partitions to disk when they
// do not fit; the paper's one-executor run fell off a cliff for exactly this
// reason (§6.1, RQ2). CachedStringRdd reproduces the mechanism: if the
// dataset's estimated size exceeds the engine's total executor memory, every
// partition is serialized to a spill file (real file I/O) and read back on
// access. The written and re-read bytes are recorded in the job metrics,
// which is what the cluster cost model prices as disk traffic.
//
// Integrity + lineage: each spill file carries a header magic and a
// per-partition checksum, and every record length is validated against the
// remaining file size, so truncation or corruption is detected instead of
// silently yielding garbage (or a multi-GB allocation). When a damaged or
// missing file is detected on materialize and a producer closure was
// recorded at construction, the lost partition is *recomputed from lineage*
// — Spark's recovery story — and re-spilled; without a producer, a
// descriptive SpillError is thrown.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dataflow/rdd.hpp"

namespace drapid {

/// A spill file failed validation (bad magic, impossible record length,
/// truncation, checksum mismatch) or could not be opened.
struct SpillError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class CachedStringRdd {
 public:
  using StringRdd = Rdd<std::string, std::string>;
  /// Recomputes one lost partition from the cached dataset's lineage.
  using Producer =
      std::function<std::vector<std::pair<std::string, std::string>>(
          std::size_t partition)>;

  /// Takes ownership of `rdd`; spills it if it exceeds the engine's memory
  /// budget. Records a "<name>:cache" stage with the spill write bytes.
  /// `producer`, if given, recomputes partition p when its spill file is
  /// later found damaged or missing.
  CachedStringRdd(Engine& engine, StringRdd rdd, const std::string& name,
                  Producer producer = nullptr);

  bool spilled() const { return spilled_; }
  std::size_t estimated_bytes() const { return bytes_; }
  /// Partitions recovered from lineage so far (over all materializations).
  std::size_t partitions_recovered() const { return recovered_; }

  /// Returns a copy of the dataset, reading partitions back from disk if
  /// spilled (records a "<name>:materialize" stage with the read bytes).
  StringRdd materialize();

  /// Borrows the dataset without copying. For an in-memory cache this is
  /// O(1); a spilled cache is read back once (recording the materialize
  /// stage) and kept resident, so repeated borrows are O(1) too.
  const StringRdd& borrow();

 private:
  /// Reads one spill file into `out`, validating format and checksum.
  void read_partition(std::size_t p, std::vector<StringRdd::Pair>& out,
                      TaskMetrics& task) const;
  /// Writes partition `p` of `rdd` to a fresh spill file, returns its path.
  std::string write_partition(const std::vector<StringRdd::Pair>& records,
                              TaskMetrics& task) const;

  Engine& engine_;
  std::string name_;
  Producer producer_;
  StringRdd in_memory_;             // valid when !spilled_
  std::optional<StringRdd> restored_;  // lazily filled by borrow() if spilled_
  std::vector<std::string> files_;  // one per partition when spilled_
  std::uint64_t partitioner_id_ = 0;
  std::size_t bytes_ = 0;
  std::size_t recovered_ = 0;
  bool spilled_ = false;
};

}  // namespace drapid
