// Customized DBSCAN clustering of single pulse events (pipeline stage 2).
//
// Following Pang et al. [24] as described in the paper (§5, stage two): SPEs
// are clustered in DM-vs-time space, with two radio-astronomy-specific
// customizations:
//   1. The DM axis is measured in *trial-grid index* units rather than raw
//      pc cm⁻³, so the neighbourhood adapts to the DM-dependent trial spacing
//      (0.01 at low DM, 2.0 at high DM) instead of collapsing or exploding
//      at either end of the grid.
//   2. A merge pass rejoins cluster fragments that belong to one single
//      pulse but were split "due to artifacts of data processing" (paper §5)
//      — e.g. the S/N dipping below threshold mid-peak.
#pragma once

#include <cstddef>
#include <vector>

#include "spe/dm_grid.hpp"
#include "spe/spe_io.hpp"

namespace drapid {

struct DbscanParams {
  /// Neighbourhood half-width along time (seconds).
  double eps_time_s = 0.05;
  /// Neighbourhood half-width along DM, in trial-index units.
  double eps_dm_trials = 6.0;
  /// Minimum neighbours (self included) for a core point.
  std::size_t min_pts = 3;
  /// Merge pass: fragments whose DM-index gap is below this and whose time
  /// centroids are within `merge_time_gap_s` are rejoined.
  double merge_dm_gap_trials = 12.0;
  double merge_time_gap_s = 0.1;
  /// Disable the merge pass (for the ablation benchmark).
  bool merge_fragments = true;
};

/// One cluster: indices into the observation's event vector.
struct SpeCluster {
  int id = 0;
  std::vector<std::size_t> members;
};

struct ClusteringResult {
  std::vector<SpeCluster> clusters;
  /// Per-event label: cluster id, or -1 for noise.
  std::vector<int> labels;
};

/// Runs the customized DBSCAN over one observation's SPEs.
ClusteringResult dbscan_cluster(const ObservationData& obs, const DmGrid& grid,
                                const DbscanParams& params);

/// Builds the cluster-file records (bounding box, SNR max, ClusterRank) for
/// an observation's clusters. Rank 1 is the brightest cluster by SNR max —
/// the ClusterRank feature of Table 1.
std::vector<ClusterRecord> make_cluster_records(const ObservationData& obs,
                                                const ClusteringResult& result);

/// Copies a cluster's member SPEs sorted by DM — the order in which
/// Algorithm 1 walks them.
std::vector<SinglePulseEvent> cluster_events(const ObservationData& obs,
                                             const SpeCluster& cluster);

}  // namespace drapid
