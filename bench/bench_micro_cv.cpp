// Microbenchmarks for the cross-validation pipeline the figure benches are
// built from: the Figure 5 slice (stratified 5-fold CV per learner), the
// Figure 6 slice (filter-scored feature selection feeding the CV), SMOTE'd
// folds, and the batched prediction path behind testing-time measurements.
//
// Together with bench_micro_ml (single-train costs) this pins the ML
// regression surface: tools/bench_baseline.sh bundles both into the
// committed baseline that DRAPID_BENCH_CHECK diffs against.
#include <benchmark/benchmark.h>

#include "micro_support.hpp"

#include "ml/classifier.hpp"
#include "ml/cross_validation.hpp"
#include "ml/feature_selection.hpp"
#include "ml/smote.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {
namespace {

/// Mildly overlapping blobs (same generator as bench_micro_ml): positive
/// classes around distinct centers. `positive_fraction` < 1 thins every
/// class but 0 to produce the imbalance SMOTE exists for.
Dataset bench_dataset(std::size_t instances, std::size_t features,
                      std::size_t classes, double positive_fraction = 1.0) {
  std::vector<std::string> feature_names, class_names;
  for (std::size_t f = 0; f < features; ++f) {
    feature_names.push_back("f" + std::to_string(f));
  }
  for (std::size_t c = 0; c < classes; ++c) {
    class_names.push_back("c" + std::to_string(c));
  }
  Dataset d(std::move(feature_names), std::move(class_names));
  Rng rng(5);
  std::vector<double> x(features);
  for (std::size_t i = 0; i < instances; ++i) {
    auto y = static_cast<int>(rng.below(classes));
    if (y != 0 && positive_fraction < 1.0 && !rng.chance(positive_fraction)) {
      y = 0;
    }
    for (std::size_t f = 0; f < features; ++f) {
      const double center =
          static_cast<double>((static_cast<std::size_t>(y) * (f + 3)) % 7);
      x[f] = rng.normal(center, 1.2);
    }
    d.add(x, y);
  }
  return d;
}

// --- Figure 5 slice: stratified 5-fold CV per learner -----------------------

void cv_learner(benchmark::State& state, LearnerType type,
                std::size_t threads) {
  const auto d = bench_dataset(static_cast<std::size_t>(state.range(0)), 22,
                               static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    Rng rng(7);
    const auto result = cross_validate(
        d, 5, [type] { return make_classifier(type, 1); }, rng, nullptr,
        nullptr, CvOptions{.threads = threads});
    benchmark::DoNotOptimize(result.pooled.total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Cv_J48(benchmark::State& state) {
  cv_learner(state, LearnerType::kJ48, 1);
}
BENCHMARK(BM_Cv_J48)->Args({600, 2})->Args({600, 8});

void BM_Cv_RF(benchmark::State& state) {
  cv_learner(state, LearnerType::kRandomForest, 1);
}
BENCHMARK(BM_Cv_RF)->Args({600, 2});

// Fold-parallel path: same folds on the work-stealing pool. Tracks the
// dispatch overhead on top of BM_Cv_J48 (wall-clock gains need >1 core).
void BM_Cv_J48_Threads4(benchmark::State& state) {
  cv_learner(state, LearnerType::kJ48, 4);
}
BENCHMARK(BM_Cv_J48_Threads4)->Args({600, 2});

// --- SMOTE'd training folds (the imbalance-treatment slice) ----------------

void BM_Cv_J48_Smote(benchmark::State& state) {
  const auto d = bench_dataset(800, 22, 2, 0.15);
  for (auto _ : state) {
    Rng rng(7);
    const auto result = cross_validate(
        d, 5, [] { return make_classifier(LearnerType::kJ48, 1); }, rng,
        [](const Dataset& train, Rng& fold_rng) {
          return apply_smote(train, SmoteParams{}, fold_rng);
        });
    benchmark::DoNotOptimize(result.total_transform_seconds);
  }
}
BENCHMARK(BM_Cv_J48_Smote);

// --- Figure 6 slice: filter-scored feature selection feeding the CV --------

void BM_Cv_J48_FilteredTop10(benchmark::State& state) {
  const auto d = bench_dataset(600, 22, 2);
  for (auto _ : state) {
    const auto top = top_k_features(d, FilterMethod::kInfoGain, 10);
    const Dataset selected = d.select_features(top);
    Rng rng(7);
    const auto result = cross_validate(
        selected, 5, [] { return make_classifier(LearnerType::kJ48, 1); },
        rng);
    benchmark::DoNotOptimize(result.pooled.total());
  }
}
BENCHMARK(BM_Cv_J48_FilteredTop10);

// --- Testing times: the batched prediction path ----------------------------

void predict_batch_learner(benchmark::State& state, LearnerType type) {
  const auto train = bench_dataset(600, 22, 2);
  const auto test = bench_dataset(2000, 22, 2);
  auto classifier = make_classifier(type, 1);
  classifier->train(train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier->predict_batch(test));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test.num_instances()));
}

void BM_PredictBatch_J48(benchmark::State& state) {
  predict_batch_learner(state, LearnerType::kJ48);
}
BENCHMARK(BM_PredictBatch_J48);

void BM_PredictBatch_RF(benchmark::State& state) {
  predict_batch_learner(state, LearnerType::kRandomForest);
}
BENCHMARK(BM_PredictBatch_RF);

// Per-instance path for comparison (what predict_batch amortizes).
void BM_PredictSingle_RF(benchmark::State& state) {
  const auto train = bench_dataset(600, 22, 2);
  const auto test = bench_dataset(2000, 22, 2);
  auto classifier = make_classifier(LearnerType::kRandomForest, 1);
  classifier->train(train);
  for (auto _ : state) {
    int sink = 0;
    for (std::size_t i = 0; i < test.num_instances(); ++i) {
      sink += classifier->predict(test.instance(i));
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test.num_instances()));
}
BENCHMARK(BM_PredictSingle_RF);

}  // namespace
}  // namespace ml
}  // namespace drapid

DRAPID_MICRO_MAIN("bench_micro_cv",
                  "Micro-benchmarks for the CV pipeline: stratified k-fold "
                  "CV, SMOTE'd folds, filtered CV, batched prediction.")
