#include <gtest/gtest.h>

#include <cmath>

#include "ml/classifier.hpp"
#include "ml/cross_validation.hpp"
#include "ml/random_forest.hpp"
#include "ml/rules.hpp"
#include "ml/smo.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {
namespace {

/// Well-separated Gaussian blobs, one per class.
Dataset blobs(std::size_t classes, std::size_t per_class, double separation,
              std::uint64_t seed) {
  std::vector<std::string> class_names;
  for (std::size_t c = 0; c < classes; ++c) {
    class_names.push_back("c" + std::to_string(c));
  }
  Dataset d({"x", "y", "noise"}, class_names);
  Rng rng(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    const double cx = separation * static_cast<double>(c);
    const double cy = separation * static_cast<double>(c % 2);
    for (std::size_t i = 0; i < per_class; ++i) {
      d.add(std::vector<double>{rng.normal(cx, 0.5), rng.normal(cy, 0.5),
                                rng.normal(0.0, 1.0)},
            static_cast<int>(c));
    }
  }
  return d;
}

double training_accuracy(Classifier& c, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    correct += (c.predict(d.instance(i)) == d.label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(d.num_instances());
}

TEST(LearnerRegistry, AllSixFromTable5) {
  const auto& all = all_learner_types();
  ASSERT_EQ(all.size(), 6u);
  std::vector<std::string> names;
  for (auto t : all) names.push_back(learner_name(t));
  for (const char* expected : {"MPN", "SMO", "JRip", "J48", "PART", "RF"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

class EveryLearner : public ::testing::TestWithParam<LearnerType> {};

TEST_P(EveryLearner, LearnsSeparableBinaryProblem) {
  const Dataset d = blobs(2, 120, 4.0, 17);
  auto c = make_classifier(GetParam(), 1);
  c->train(d);
  EXPECT_GE(training_accuracy(*c, d), 0.95) << c->name();
}

TEST_P(EveryLearner, LearnsSeparableMulticlassProblem) {
  const Dataset d = blobs(4, 80, 5.0, 23);
  auto c = make_classifier(GetParam(), 2);
  c->train(d);
  EXPECT_GE(training_accuracy(*c, d), 0.9) << c->name();
}

TEST_P(EveryLearner, DeterministicForSameSeed) {
  const Dataset d = blobs(3, 60, 3.0, 29);
  auto a = make_classifier(GetParam(), 42);
  auto b = make_classifier(GetParam(), 42);
  a->train(d);
  b->train(d);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x{rng.uniform(-2, 14), rng.uniform(-2, 8),
                                rng.normal()};
    ASSERT_EQ(a->predict(x), b->predict(x)) << a->name();
  }
}

TEST_P(EveryLearner, ThrowsOnEmptyDataset) {
  Dataset empty({"x"}, {"a", "b"});
  auto c = make_classifier(GetParam(), 1);
  EXPECT_THROW(c->train(empty), std::invalid_argument);
}

TEST_P(EveryLearner, HandlesSingleClassData) {
  Dataset d({"x"}, {"only"});
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    d.add(std::vector<double>{rng.normal()}, 0);
  }
  auto c = make_classifier(GetParam(), 1);
  c->train(d);
  EXPECT_EQ(c->predict(std::vector<double>{0.5}), 0);
}

INSTANTIATE_TEST_SUITE_P(Table5, EveryLearner,
                         ::testing::ValuesIn(all_learner_types()),
                         [](const auto& info) {
                           return learner_name(info.param);
                         });

TEST(DecisionTree, PureLeafStopsGrowth) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 20; ++i) d.add(std::vector<double>{double(i)}, i < 10 ? 0 : 1);
  DecisionTree tree;
  tree.train(d);
  EXPECT_EQ(tree.node_count(), 3u);  // one split suffices
  EXPECT_EQ(tree.depth(), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{3.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{15.0}), 1);
}

TEST(DecisionTree, PathToLeafReconstructsConditions) {
  Dataset d({"x", "y"}, {"a", "b", "c"});
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 3);
    const double y = rng.uniform(0, 1);
    const int label = x < 1 ? 0 : (x < 2 ? 1 : 2);
    d.add(std::vector<double>{x, y}, label);
  }
  DecisionTree tree;
  tree.train(d);
  // For a sample of points, the leaf's path conditions must all hold.
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x{rng.uniform(0, 3), rng.uniform(0, 1)};
    const int leaf = tree.leaf_index(x);
    for (const auto& cond : tree.path_to_leaf(leaf)) {
      const double v = x[static_cast<std::size_t>(cond.feature)];
      EXPECT_TRUE(cond.less_equal ? v <= cond.threshold : v > cond.threshold);
    }
    EXPECT_EQ(tree.leaf_label(leaf), tree.predict(x));
  }
}

TEST(DecisionTree, PathToInternalNodeThrows) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 20; ++i) d.add(std::vector<double>{double(i)}, i < 10 ? 0 : 1);
  DecisionTree tree;
  tree.train(d);
  EXPECT_THROW(tree.path_to_leaf(0), std::invalid_argument);  // root splits
}

TEST(DecisionTree, MaxDepthIsRespected) {
  const Dataset d = blobs(2, 200, 0.5, 31);  // overlapping: wants deep trees
  TreeParams params;
  params.max_depth = 3;
  DecisionTree tree(params);
  tree.train(d);
  EXPECT_LE(tree.depth(), 3);
}

TEST(RandomForest, MoreTreesMoreNodes) {
  const Dataset d = blobs(2, 100, 2.0, 37);
  ForestParams small;
  small.num_trees = 3;
  ForestParams big;
  big.num_trees = 12;
  RandomForest a(small, 1), b(big, 1);
  a.train(d);
  b.train(d);
  EXPECT_EQ(a.num_trees(), 3u);
  EXPECT_EQ(b.num_trees(), 12u);
  EXPECT_GT(b.total_nodes(), a.total_nodes());
  EXPECT_GT(b.total_split_evaluations(), a.total_split_evaluations());
}

TEST(Rules, PartProducesRulesCoveringTrainingData) {
  const Dataset d = blobs(3, 80, 4.0, 41);
  PartClassifier part({}, 1);
  part.train(d);
  EXPECT_GT(part.rules().size(), 0u);
  EXPECT_GE(training_accuracy(part, d), 0.9);
}

TEST(Rules, JripRulesTargetMinorityClassesFirst) {
  // Imbalanced: class 1 is rare; RIPPER learns rules for it and defaults to
  // the majority.
  Dataset d({"x"}, {"majority", "rare"});
  Rng rng(43);
  for (int i = 0; i < 300; ++i) d.add(std::vector<double>{rng.normal(0, 1)}, 0);
  for (int i = 0; i < 30; ++i) d.add(std::vector<double>{rng.normal(6, 0.3)}, 1);
  JripClassifier jrip({}, 1);
  jrip.train(d);
  EXPECT_EQ(jrip.default_label(), 0);
  ASSERT_GT(jrip.rules().size(), 0u);
  for (const auto& rule : jrip.rules()) EXPECT_EQ(rule.label, 1);
  EXPECT_EQ(jrip.predict(std::vector<double>{6.0}), 1);
  EXPECT_EQ(jrip.predict(std::vector<double>{0.0}), 0);
}

TEST(Rules, RuleMatchesEvaluatesConjunction) {
  Rule rule;
  rule.conditions.push_back(Rule::Condition{0, 5.0, true});
  rule.conditions.push_back(Rule::Condition{1, 2.0, false});
  rule.label = 1;
  EXPECT_TRUE(rule.matches(std::vector<double>{4.0, 3.0}));
  EXPECT_FALSE(rule.matches(std::vector<double>{6.0, 3.0}));
  EXPECT_FALSE(rule.matches(std::vector<double>{4.0, 1.0}));
}

TEST(Smo, PairwiseMachineCountMatchesClasses) {
  const Dataset d = blobs(4, 40, 5.0, 47);
  SmoClassifier smo({}, 1);
  smo.train(d);
  EXPECT_EQ(smo.num_binary_machines(), 6u);  // 4 choose 2
}

}  // namespace
}  // namespace ml
}  // namespace drapid
