// Two-stage subband dedispersion (PR 8): FDMT-style shift reuse on top of
// the PR 5 shift-plan sweep.
//
// The exact sweep accumulates `channels` shifted rows per unique plan —
// O(plans × channels × samples). But within a contiguous channel *group*,
// the shift vector of a plan decomposes as
//
//   shift_c = base_g + residual_c,  base_g = min shift in the group,
//
// and the residual vectors repeat heavily across plans: the dispersion
// curve's shape inside a narrow group changes much more slowly with DM than
// its absolute offset. Deduplicating residual *patterns* per group turns the
// sweep into
//
//   stage 1  for every distinct (group, pattern): accumulate the group's
//            channels once into a partial series (the "coarse node"),
//   stage 2  for every plan: sum its G partials, each offset by the plan's
//            base_g — `groups` stream adds instead of `channels` row adds.
//
// The decomposition is *exact* in coverage: base_g + residual_c recreates
// every channel's clamped shift, so each channel contributes to exactly the
// same output samples as in the exact sweep, and normalize_tail applies
// unchanged. The only difference is floating-point associativity — channel
// sums are regrouped as (group sums) before the cross-group add — bounding
// |subband - exact| per sample by ~2·(channels-1)·eps·Σ|x| (≈1e-12 for
// unit-noise data; dedisp_subband_test pins measured bounds far below the
// detection tolerance). Detected event sets are asserted identical to the
// exact oracle on every seed/synth survey.
//
// Group count: `SinglePulseSearchParams::subband_groups`, or 0 to pick the
// argmin of a bytes-touched cost model (stage-1 rows shrink as groups grow
// coarser; stage-2 stream adds grow linearly with G).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dedisp/single_pulse_search.hpp"

namespace drapid {

/// A contiguous channel range [begin, end) coarse-dedispersed as one unit.
struct SubbandGroup {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// One distinct residual-shift vector within a group — a coarse node.
/// residuals[i] is the extra shift of channel group.begin + i relative to
/// the plan's group base shift; a residual clamped at num_samples
/// contributes nothing (exactly like a clamped full shift).
struct SubbandPattern {
  std::vector<std::uint32_t> residuals;
};

/// Per (plan, group): which pattern the plan uses and the group's base
/// shift (min shift over the group's channels, <= num_samples).
struct SubbandEntry {
  std::uint32_t pattern = 0;
  std::uint32_t offset = 0;
};

struct SubbandPlan {
  std::vector<SubbandGroup> groups;
  /// patterns[g] — the distinct residual vectors seen in group g, in first-
  /// use (plan) order.
  std::vector<std::vector<SubbandPattern>> patterns;
  /// entries[plan * groups.size() + g] — row-major by plan.
  std::vector<SubbandEntry> entries;
  std::size_t num_plans = 0;
  /// Exclusive prefix of patterns[g].size(): flat slot id of (g, p) is
  /// pattern_base[g] + p; pattern_base.back() == total_patterns.
  std::vector<std::size_t> pattern_base;
  std::size_t total_patterns = 0;
  /// Largest residual over all patterns (clamped to num_samples) — the only
  /// lookback stage 1 needs, so the streaming overlap carry shrinks from the
  /// full-band max shift to this.
  std::uint32_t max_residual = 0;

  const SubbandEntry& entry(std::size_t plan, std::size_t g) const {
    return entries[plan * groups.size() + g];
  }
};

/// Decomposes a deduplicated sweep plan into groups × residual patterns.
/// `groups` = 0 picks the group count by cost model; any other value is
/// clamped to [1, channels]. Works for every degenerate shape: one channel,
/// one group (patterns ≈ plans, correct but no reuse), groups == channels
/// (every pattern is {0}: stage 1 passes rows through, stage 2 does the
/// full dedispersion as offset stream adds).
SubbandPlan build_subband_plan(const SweepPlan& sweep, std::size_t channels,
                               std::size_t num_samples,
                               std::size_t groups = 0);

/// Stage 1 for one coarse node: out[t] = Σ_{i} x_{group.begin+i}[t + r_i]
/// over t where t + r_i < n (ascending channel order per sample, exactly
/// like dedisperse_plan within the group). out must hold n doubles; it is
/// overwritten.
void accumulate_subband_partial(const Filterbank& fb,
                                const SubbandGroup& group,
                                const SubbandPattern& pattern, double* out,
                                std::size_t n);

/// Stage 2 for one plan: series[s] = Σ_g partials[g][s + offset_g] for the
/// groups still in range (ascending group order per sample — the regrouped
/// summation the error bound describes). partials[g] points at the partial
/// series for the plan's (g, pattern) node; series is resized to n and
/// fully overwritten. Does NOT apply normalize_tail.
void combine_subband_series(const SubbandPlan& sub, std::size_t plan_index,
                            const double* const* partials, std::size_t n,
                            std::vector<double>& series);

/// Test/verification helper: dedisperses one plan via the subband path
/// (stage 1 for its G nodes + stage 2 + normalize_tail) into scratch.series
/// — the series the full subband sweep detects on, for error-bound
/// assertions against dedisperse_plan.
void subband_series(const Filterbank& fb, const SweepPlan& sweep,
                    const SubbandPlan& sub, std::size_t plan_index,
                    DedispScratch& scratch);

/// The full subband search: build_sweep_plan + build_subband_plan, stage 1/2
/// over plan blocks on the worker pool, per-plan detection, trial-order
/// merge. Called by single_pulse_search() when params.method == kSubband;
/// same output contract, and the detected event set is identical to the
/// exact method on every surveyed input (bounded series error never crosses
/// a detection decision — pinned by dedisp_subband_test). Emits
/// `dedisp.subband.*` counters and spans.
std::vector<SinglePulseEvent> subband_single_pulse_search(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params);

}  // namespace drapid
