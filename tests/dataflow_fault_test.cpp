// Fault-injection suite: the engine must absorb injected task kills, spill
// corruption/loss, and dead block-store nodes without changing the job's
// output — recovery is priced, never lossy.
#include "dataflow/fault.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dataflow/block_store.hpp"
#include "dataflow/cluster_model.hpp"
#include "dataflow/spill.hpp"
#include "drapid/driver.hpp"
#include "drapid/pipeline.hpp"

namespace drapid {
namespace {

using StringRdd = Rdd<std::string, std::string>;

// ---------------------------------------------------------------- injector

TEST(FaultInjector, DisabledPlanInjectsNothing) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  for (std::size_t p = 0; p < 50; ++p) {
    EXPECT_FALSE(inj.fail_task("stage", p, 0));
    EXPECT_EQ(inj.spill_fault("cache", p), SpillFault::kNone);
  }
  EXPECT_TRUE(inj.dead_nodes(15).empty());
}

TEST(FaultInjector, DecisionsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 99;
  plan.task_failure_rate = 0.3;
  plan.spill_fault_rate = 0.3;
  plan.node_fault_rate = 0.3;
  const FaultInjector a(plan), b(plan);
  for (std::size_t p = 0; p < 100; ++p) {
    EXPECT_EQ(a.fail_task("s", p, 0), b.fail_task("s", p, 0));
    EXPECT_EQ(a.spill_fault("c", p), b.spill_fault("c", p));
  }
  EXPECT_EQ(a.dead_nodes(15), b.dead_nodes(15));
}

TEST(FaultInjector, FaultSetGrowsMonotonicallyWithRate) {
  // A fault injected at rate r must also be injected at every r' > r —
  // the property that makes recovery overhead monotone in the rate.
  FaultPlan lo_plan, hi_plan;
  lo_plan.seed = hi_plan.seed = 7;
  lo_plan.task_failure_rate = 0.1;
  hi_plan.task_failure_rate = 0.4;
  const FaultInjector lo(lo_plan), hi(hi_plan);
  std::size_t lo_kills = 0, hi_kills = 0;
  for (std::size_t p = 0; p < 500; ++p) {
    const bool lo_fails = lo.fail_task("s", p, 0);
    lo_kills += lo_fails;
    hi_kills += hi.fail_task("s", p, 0);
    if (lo_fails) {
      EXPECT_TRUE(hi.fail_task("s", p, 0));
    }
  }
  EXPECT_GT(lo_kills, 0u);
  EXPECT_GT(hi_kills, lo_kills);
}

TEST(FaultInjector, FailOnceStagesKillExactlyTheFirstAttempt) {
  FaultPlan plan;
  plan.fail_once_stages = {"search"};
  const FaultInjector inj(plan);
  for (std::size_t p = 0; p < 10; ++p) {
    EXPECT_TRUE(inj.fail_task("search", p, 0));
    EXPECT_FALSE(inj.fail_task("search", p, 1));
    EXPECT_FALSE(inj.fail_task("load:x", p, 0));  // prefix does not match
  }
}

TEST(FaultInjector, RateKillsRespectPerTaskBudget) {
  FaultPlan plan;
  plan.task_failure_rate = 1.0;  // every attempt 0 dies...
  plan.max_injected_failures_per_task = 1;
  const FaultInjector inj(plan);
  EXPECT_TRUE(inj.fail_task("s", 3, 0));
  EXPECT_FALSE(inj.fail_task("s", 3, 1));  // ...but attempt 1 survives
}

TEST(FaultInjector, ExplicitSpillListsOverrideRates) {
  FaultPlan plan;
  plan.corrupt_spill_partitions = {2};
  plan.lose_spill_partitions = {5};
  const FaultInjector inj(plan);
  EXPECT_EQ(inj.spill_fault("data", 2), SpillFault::kCorrupt);
  EXPECT_EQ(inj.spill_fault("data", 5), SpillFault::kLose);
  EXPECT_EQ(inj.spill_fault("data", 0), SpillFault::kNone);
}

TEST(FaultInjector, DeadNodesAreSortedUniqueAndBounded) {
  FaultPlan plan;
  plan.dead_nodes = {9, 2, 9, 40, -1};  // 40 and -1 exceed a 15-node cluster
  const FaultInjector inj(plan);
  EXPECT_EQ(inj.dead_nodes(15), (std::vector<int>{2, 9}));
}

// ------------------------------------------------------------- task retry

EngineConfig small_engine() {
  EngineConfig cfg;
  cfg.num_executors = 1;
  cfg.worker_threads = 2;
  cfg.partitions_per_core = 4;
  return cfg;
}

TEST(TaskRetry, KilledAttemptsAreRetriedAndCounted) {
  EngineConfig cfg = small_engine();
  cfg.faults.fail_once_stages = {"work"};
  Engine engine(cfg);
  auto& stage = engine.begin_stage("work", 4);
  std::vector<std::atomic<int>> runs(4);
  engine.run_stage(stage, [&](TaskContext& ctx) {
    ctx.metrics().compute_cost = 10;
    runs[ctx.partition()].fetch_add(1);
  });
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(runs[p].load(), 1) << "a body must run at most once";
    EXPECT_EQ(stage.tasks[p].attempts, 2u);
    EXPECT_EQ(stage.tasks[p].retry_cost, 10u);
  }
  EXPECT_EQ(stage.total_retries(), 4u);
}

TEST(TaskRetry, ExhaustedAttemptBudgetThrowsTaskFailure) {
  EngineConfig cfg = small_engine();
  cfg.max_task_attempts = 3;
  cfg.faults.task_failure_rate = 1.0;
  cfg.faults.max_injected_failures_per_task = 100;  // kill every attempt
  Engine engine(cfg);
  auto& stage = engine.begin_stage("doomed", 2);
  EXPECT_THROW(engine.run_stage(stage, [](TaskContext&) {}), TaskFailure);
}

TEST(TaskRetry, GenuineExceptionsAreNotRetried) {
  Engine engine(small_engine());
  auto& stage = engine.begin_stage("buggy", 2);
  std::atomic<int> calls{0};
  EXPECT_THROW(engine.run_stage(stage,
                                [&](TaskContext& ctx) {
                                  calls.fetch_add(1);
                                  if (ctx.partition() == 1) {
                                    throw std::logic_error("bug");
                                  }
                                }),
               std::logic_error);
  EXPECT_LE(calls.load(), 2);  // no re-execution of the faulting body
}

// ---------------------------------------------------- spill damage + lineage

StringRdd make_rdd(Engine& engine, std::size_t pairs) {
  std::vector<std::pair<std::string, std::string>> data;
  for (std::size_t i = 0; i < pairs; ++i) {
    data.emplace_back("key" + std::to_string(i),
                      "value-" + std::to_string(i * 31));
  }
  return parallelize(engine, std::move(data), 4);
}

EngineConfig spilling_engine() {
  EngineConfig cfg = small_engine();
  cfg.executor_memory_bytes = 64;  // force every cache to spill
  return cfg;
}

TEST(SpillFaults, CorruptFileWithoutProducerThrowsDescriptiveError) {
  EngineConfig cfg = spilling_engine();
  cfg.faults.corrupt_spill_partitions = {1};
  Engine engine(cfg);
  CachedStringRdd cached(engine, make_rdd(engine, 60), "data");
  ASSERT_TRUE(cached.spilled());
  try {
    cached.materialize();
    FAIL() << "corrupted partition must not materialize silently";
  } catch (const SpillError& e) {
    EXPECT_NE(std::string(e.what()).find("spill file"), std::string::npos);
  }
}

TEST(SpillFaults, LostFileWithoutProducerThrows) {
  EngineConfig cfg = spilling_engine();
  cfg.faults.lose_spill_partitions = {0};
  Engine engine(cfg);
  CachedStringRdd cached(engine, make_rdd(engine, 60), "data");
  ASSERT_TRUE(cached.spilled());
  EXPECT_THROW(cached.materialize(), SpillError);
}

TEST(SpillFaults, ProducerRecomputesLostPartitionsByteIdentically) {
  const auto run = [](FaultPlan faults) {
    EngineConfig cfg = spilling_engine();
    cfg.faults = std::move(faults);
    Engine engine(cfg);
    auto rdd = make_rdd(engine, 80);
    std::vector<std::vector<StringRdd::Pair>> original = rdd.partitions;
    CachedStringRdd cached(
        engine, std::move(rdd), "data",
        [original](std::size_t p) { return original.at(p); });
    EXPECT_TRUE(cached.spilled());
    auto collected = cached.materialize().collect();
    return std::make_pair(std::move(collected), cached.partitions_recovered());
  };
  const auto [clean, clean_recovered] = run({});
  FaultPlan faults;
  faults.corrupt_spill_partitions = {1};
  faults.lose_spill_partitions = {3};
  const auto [faulty, faulty_recovered] = run(std::move(faults));
  EXPECT_EQ(clean_recovered, 0u);
  EXPECT_EQ(faulty_recovered, 2u);
  EXPECT_EQ(clean, faulty) << "lineage recovery must be lossless";
}

TEST(SpillFaults, RecoveryReSpillsSoLaterReadsAreHealthy) {
  EngineConfig cfg = spilling_engine();
  cfg.faults.corrupt_spill_partitions = {2};
  Engine engine(cfg);
  auto rdd = make_rdd(engine, 80);
  std::vector<std::vector<StringRdd::Pair>> original = rdd.partitions;
  CachedStringRdd cached(
      engine, std::move(rdd), "data",
      [original](std::size_t p) { return original.at(p); });
  const auto first = cached.materialize().collect();
  EXPECT_EQ(cached.partitions_recovered(), 1u);
  const auto second = cached.materialize().collect();
  EXPECT_EQ(cached.partitions_recovered(), 1u)
      << "the re-spilled file must validate; no second recovery";
  EXPECT_EQ(first, second);
}

TEST(SpillFaults, TruncatedFileIsRejectedWithContext) {
  Engine engine(spilling_engine());
  CachedStringRdd cached(engine, make_rdd(engine, 60), "data");
  ASSERT_TRUE(cached.spilled());
  // Truncate one spill file behind the cache's back.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(engine.next_spill_path()).parent_path();
  bool truncated = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!truncated && fs::file_size(entry.path()) > 16) {
      fs::resize_file(entry.path(), 16);
      truncated = true;
    }
  }
  ASSERT_TRUE(truncated);
  EXPECT_THROW(cached.materialize(), SpillError);
}

// --------------------------------------------------------- replica failover

TEST(BlockStoreFaults, ReadsFailOverToSurvivingReplicas) {
  BlockStore store(5, /*block_size=*/64, /*replication=*/3);
  std::string contents;
  for (int i = 0; i < 40; ++i) {
    contents += "line-" + std::to_string(i) + "\n";
  }
  store.put("f", contents);
  const auto chunks_before = store.line_chunks("f");
  // Kill the primary replica of every block: one dead node cannot make any
  // block unreadable at replication 3.
  store.mark_node_dead(store.blocks("f")[0].replicas[0]);
  EXPECT_EQ(store.line_chunks("f"), chunks_before);
  EXPECT_GT(store.replica_failovers(), 0u);
  EXPECT_EQ(store.read_block("f", 0),
            contents.substr(0, store.blocks("f")[0].size));
}

TEST(BlockStoreFaults, AllReplicasDeadIsADescriptiveError) {
  BlockStore store(3, /*block_size=*/64, /*replication=*/2);
  store.put("f", std::string(200, 'x'));
  for (const int node : store.blocks("f")[0].replicas) {
    store.mark_node_dead(node);
  }
  try {
    store.read_block("f", 0);
    FAIL() << "read must not succeed with every replica dead";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("all replicas"), std::string::npos);
  }
}

TEST(BlockStoreFaults, OutOfRangeDeadNodeIsIgnored) {
  BlockStore store(4);
  store.mark_node_dead(-3);
  store.mark_node_dead(99);
  EXPECT_EQ(store.num_dead_nodes(), 0u);
}

// ------------------------------------------------------ retry cost pricing

TEST(ClusterModelFaults, RetriesRaiseTheModeledMakespan) {
  JobMetrics clean;
  StageMetrics stage;
  stage.name = "s";
  for (std::size_t i = 0; i < 8; ++i) {
    TaskMetrics t;
    t.partition = i;
    t.compute_cost = 100000;
    t.attempts = 1;
    stage.tasks.push_back(t);
  }
  clean.stages.push_back(stage);
  JobMetrics faulty = clean;
  faulty.stages.front().tasks[2].attempts = 3;
  faulty.stages.front().tasks[2].retry_cost = 200000;
  const ClusterSpec spec = ClusterSpec::paper_beowulf(1);
  EXPECT_GT(simulate_cluster(faulty, spec).total_seconds,
            simulate_cluster(clean, spec).total_seconds);
}

// ------------------------------------------------------------- end to end

PipelineConfig fault_pipeline() {
  PipelineConfig cfg;
  cfg.survey = SurveyConfig::gbt350drift();
  cfg.survey.obs_length_s = 60.0;
  cfg.survey.noise_events_per_second = 10.0;
  cfg.num_observations = 4;
  cfg.visibility = 0.08;
  cfg.seed = 71;
  return cfg;
}

TEST(DrapidFaults, JobSurvivesKillsCorruptionAndDeadNodeByteIdentically) {
  const auto cfg = fault_pipeline();
  const auto data = prepare_pipeline_data(cfg);
  const auto run = [&](FaultPlan faults) {
    BlockStore store(15);
    store.put("d.csv", data.data_csv);
    store.put("c.csv", data.cluster_csv);
    EngineConfig engine_cfg;
    engine_cfg.num_executors = 1;
    engine_cfg.cores_per_executor = 2;
    engine_cfg.worker_threads = 2;
    engine_cfg.partitions_per_core = 4;
    engine_cfg.executor_memory_bytes = 64 << 10;  // spill for real
    engine_cfg.faults = std::move(faults);
    Engine engine(engine_cfg);
    auto result = run_drapid(engine, store, "d.csv", "c.csv", "ml",
                             *cfg.survey.grid, {});
    return std::make_pair(store.get("ml"), std::move(result));
  };

  const auto [clean_ml, clean] = run({});
  ASSERT_GT(clean.records.size(), 0u);
  ASSERT_GT(clean.metrics.total_spill_bytes(), 0u);
  EXPECT_EQ(clean.metrics.total_retries(), 0u);

  // The deterministic havoc plan of the acceptance criteria: kill each
  // join and search task once, corrupt one spill file, drop one data node.
  FaultPlan havoc;
  havoc.fail_once_stages = {"join:clusters+data", "search"};
  havoc.corrupt_spill_partitions = {1};
  havoc.dead_nodes = {4};
  const auto [faulty_ml, faulty] = run(std::move(havoc));

  EXPECT_EQ(faulty_ml, clean_ml) << "output must be byte-identical";
  EXPECT_EQ(faulty.partitions_recovered, 1u);
  EXPECT_GT(faulty.replica_failovers, 0u);

  // Every join and search task retried exactly once; nothing else did
  // (the recompute stages record the materialize recovery separately).
  for (const auto& stage : faulty.metrics.stages) {
    const bool killed = stage.name == "join:clusters+data" ||
                        stage.name == "search";
    if (killed) {
      for (const auto& task : stage.tasks) {
        EXPECT_EQ(task.attempts, 2u) << stage.name;
      }
      EXPECT_EQ(stage.total_retries(), stage.tasks.size()) << stage.name;
    } else if (stage.name != "data:materialize") {
      EXPECT_EQ(stage.total_retries(), 0u) << stage.name;
    }
  }
  EXPECT_GT(faulty.metrics.total_retry_cost(), 0u);
}

TEST(DrapidFaults, RateBasedFaultsStillProduceIdenticalResults) {
  const auto cfg = fault_pipeline();
  const auto data = prepare_pipeline_data(cfg);
  const auto run = [&](double rate) {
    BlockStore store(15);
    store.put("d.csv", data.data_csv);
    store.put("c.csv", data.cluster_csv);
    EngineConfig engine_cfg;
    engine_cfg.num_executors = 1;
    engine_cfg.cores_per_executor = 2;
    engine_cfg.worker_threads = 2;
    engine_cfg.partitions_per_core = 4;
    engine_cfg.executor_memory_bytes = 64 << 10;
    engine_cfg.faults.seed = 13;
    engine_cfg.faults.task_failure_rate = rate;
    engine_cfg.faults.spill_fault_rate = rate;
    Engine engine(engine_cfg);
    auto result = run_drapid(engine, store, "d.csv", "c.csv", "ml",
                             *cfg.survey.grid, {});
    return std::make_pair(store.get("ml"), std::move(result));
  };
  const auto [clean_ml, clean] = run(0.0);
  const auto [faulty_ml, faulty] = run(0.3);
  EXPECT_EQ(faulty_ml, clean_ml);
  EXPECT_GT(faulty.metrics.total_retries(), clean.metrics.total_retries());
}

}  // namespace
}  // namespace drapid
