// Headline numbers (paper §7 conclusions): a single paper-vs-measured
// summary across the classification claims. The identification headline
// (up to 5× over multithreaded) is produced by bench_fig4_identification.
//
//   * ALM RF Recall/F-Measure within ~2 % of binary RF;
//   * ALM cutting RF training time (~47 % claimed), IG adding ~7 % more;
//   * RF + ALM + IG reaching Recall ≈ 0.96 and F-Measure ≈ 0.95;
//   * IG cutting binary MPN training time (~64 % claimed).
#include <iostream>

#include "exp/trial_runner.hpp"
#include "obs/bench.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  obs::BenchOptions bench(
      "bench_headline", argc, argv,
      {{"positives", "250"}, {"negatives", "1500"}},
      "Headline classification numbers, paper vs measured.");
  if (bench.help()) return 0;
  const Options& opts = bench.opts();
  std::cout << "=== Headline classification numbers (paper vs measured) ===\n";

  BenchmarkConfig cfg;
  cfg.survey = SurveyConfig::gbt350drift();
  cfg.survey.obs_length_s = 70.0;
  cfg.target_positives =
      static_cast<std::size_t>(bench.scaled(opts.integer("positives")));
  cfg.target_negatives =
      static_cast<std::size_t>(bench.scaled(opts.integer("negatives")));
  cfg.visibility = 0.10;
  cfg.seed = static_cast<std::uint64_t>(bench.seed());
  std::cerr << "building benchmark...\n";
  const auto pulses = build_benchmark_pulses(cfg);

  const auto run = [&](ml::AlmScheme scheme,
                       std::optional<ml::FilterMethod> filter,
                       ml::LearnerType learner) {
    TrialSpec spec;
    spec.scheme = scheme;
    spec.filter = filter;
    spec.learner = learner;
    spec.seed = static_cast<std::uint64_t>(bench.seed());
    TrialResult r = run_trial(pulses, spec);
    obs::Json row = obs::Json::object();
    row.set("trial", spec.describe());
    row.set("recall", r.recall);
    row.set("f_measure", r.f_measure);
    row.set("train_seconds", r.train_seconds);
    row.set("test_seconds", r.test_seconds);
    bench.report().add_result(std::move(row));
    return r;
  };

  const auto rf_binary =
      run(ml::AlmScheme::kBinary, std::nullopt, ml::LearnerType::kRandomForest);
  const auto rf_alm8 =
      run(ml::AlmScheme::kEight, std::nullopt, ml::LearnerType::kRandomForest);
  const auto rf_alm8_ig = run(ml::AlmScheme::kEight, ml::FilterMethod::kInfoGain,
                              ml::LearnerType::kRandomForest);
  const auto mpn_binary =
      run(ml::AlmScheme::kBinary, std::nullopt, ml::LearnerType::kMpn);
  const auto mpn_binary_ig = run(ml::AlmScheme::kBinary,
                                 ml::FilterMethod::kInfoGain,
                                 ml::LearnerType::kMpn);

  const auto pct = [](double base, double now) {
    return base > 0 ? (1.0 - now / base) * 100.0 : 0.0;
  };
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"claim (paper)", "paper", "measured"});
  rows.push_back({"RF+ALM8+IG Recall", "0.96",
                  format_number(rf_alm8_ig.recall)});
  rows.push_back({"RF+ALM8+IG F-Measure", "0.95",
                  format_number(rf_alm8_ig.f_measure)});
  rows.push_back(
      {"ALM8 RF Recall delta vs binary", "< ~2%",
       format_number((rf_binary.recall - rf_alm8.recall) * 100, 2) + "%"});
  rows.push_back(
      {"ALM8 RF F delta vs binary", "< ~2%",
       format_number((rf_binary.f_measure - rf_alm8.f_measure) * 100, 2) +
           "%"});
  rows.push_back({"RF train time cut from ALM8", "~47%",
                  format_number(pct(rf_binary.train_seconds,
                                    rf_alm8.train_seconds), 1) + "%"});
  rows.push_back({"extra RF cut from IG (on ALM8)", "~7%",
                  format_number(pct(rf_alm8.train_seconds,
                                    rf_alm8_ig.train_seconds), 1) + "%"});
  rows.push_back({"RF total cut (ALM8+IG vs binary)", "~54%",
                  format_number(pct(rf_binary.train_seconds,
                                    rf_alm8_ig.train_seconds), 1) + "%"});
  rows.push_back({"binary MPN train cut from IG", "~64%",
                  format_number(pct(mpn_binary.train_seconds,
                                    mpn_binary_ig.train_seconds), 1) + "%"});
  std::cout << '\n' << render_table(rows);
  std::cout << "\nSee EXPERIMENTS.md for the discussion of which deltas "
               "reproduce mechanically and which depended on the original "
               "Weka setup.\n";
  bench.finish();
  return 0;
}
