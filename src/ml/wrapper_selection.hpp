// Wrapper feature selection — the second family of §5.2.3: "wrappers use
// the results of machine learning algorithms to perform feature selection.
// They greedily search the feature space for different combinations of
// features and evaluate the effectiveness of subsets by the classification
// performance of a given algorithm."
//
// This is the classic greedy forward selection (Kohavi & John 1997): start
// from the empty set, repeatedly add the feature whose addition most
// improves the wrapped learner's cross-validated score, stop when no
// addition helps (or the budget is reached). It is far more expensive than
// the Table 4 filters — the reason the paper evaluated filters only — and
// exists here to make that trade-off measurable.
#pragma once

#include <cstdint>
#include <functional>

#include "ml/classifier.hpp"

namespace drapid {
namespace ml {

struct WrapperParams {
  /// Maximum features to select.
  std::size_t max_features = 10;
  /// Folds of the internal cross-validation per candidate subset.
  int folds = 3;
  /// Stop early when the best candidate improves the score by less than
  /// this (absolute F-measure points).
  double min_improvement = 1e-3;
  std::uint64_t seed = 1;
};

struct WrapperResult {
  /// Selected feature indices, in the order they were added.
  std::vector<std::size_t> features;
  /// Cross-validated score (collapsed F-measure) after each addition.
  std::vector<double> scores;
  /// Learner trainings performed — the execution-performance price.
  std::size_t trainings = 0;
};

/// Greedy forward selection wrapping `factory`'s classifier.
WrapperResult wrapper_forward_selection(
    const Dataset& data,
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const WrapperParams& params = {});

}  // namespace ml
}  // namespace drapid
