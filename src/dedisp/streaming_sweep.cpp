#include "dedisp/streaming_sweep.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace drapid {

StreamingSweep::StreamingSweep(const FilterbankConfig& config,
                               const DmGrid& grid,
                               const SinglePulseSearchParams& params)
    : config_(config), grid_(grid), params_(params) {
  // A zero-filled Filterbank supplies the geometry (sample count, channel
  // frequencies) the shift planner needs; its data is never read.
  const Filterbank geometry(config_);
  total_samples_ = geometry.num_samples();
  channels_ = geometry.num_channels();
  sweep_ = build_sweep_plan(geometry, grid_, params_.dm_stride);
  for (const auto& plan : sweep_.plans) {
    max_shift_ = std::max<std::size_t>(max_shift_, plan.max_shift);
  }
  max_shift_ = std::min(max_shift_, total_samples_);
  series_.resize(sweep_.plans.size());
  for (auto& s : series_) s.assign(total_samples_, 0.0);
  carry_.assign(channels_ * max_shift_, 0.0f);
  if (params_.threads > 1 && sweep_.plans.size() > 1) {
    pool_ = std::make_unique<ThreadPool>(params_.threads);
  }
}

StreamingSweep::~StreamingSweep() = default;

template <typename Fn>
void StreamingSweep::for_each_plan(const Fn& fn) {
  if (pool_) {
    pool_->parallel_for(sweep_.plans.size(), fn);
  } else {
    for (std::size_t i = 0; i < sweep_.plans.size(); ++i) fn(i);
  }
}

std::size_t StreamingSweep::prepare_window(std::size_t count) {
  if (finalized_) {
    throw std::logic_error("StreamingSweep: push after finalize");
  }
  if (pushed_ + count > total_samples_) {
    throw std::invalid_argument(
        "StreamingSweep: pushing " + std::to_string(count) + " samples at " +
        std::to_string(pushed_) + " overruns the observation's " +
        std::to_string(total_samples_) + " samples");
  }
  const std::size_t carry_len = std::min(max_shift_, pushed_);
  window_stride_ = carry_len + count;
  window_len_ = window_stride_;
  window_start_ = pushed_ - carry_len;
  window_.resize(channels_ * window_stride_);
  for (std::size_t c = 0; c < channels_; ++c) {
    std::memcpy(window_.data() + c * window_stride_,
                carry_.data() + c * max_shift_, carry_len * sizeof(float));
  }
  return carry_len;
}

void StreamingSweep::commit_block(std::size_t count) {
  pushed_ += count;
  // An output sample s of a plan with max shift v_max reads inputs up to
  // s + v_max, so everything below pushed - max_shift is complete; the final
  // block completes the whole series (clamped shifts contribute nothing past
  // the end).
  const std::size_t completed =
      pushed_ == total_samples_
          ? total_samples_
          : (pushed_ > max_shift_ ? pushed_ - max_shift_ : 0);
  if (completed > frontier_) {
    const std::size_t begin = frontier_;
    for_each_plan([&](std::size_t i) { accumulate_plan(i, begin, completed); });
    frontier_ = completed;
  }
  // Refresh the overlap carry with the last max_shift samples seen.
  const std::size_t carry_len = std::min(max_shift_, pushed_);
  const std::size_t tail = window_len_ - carry_len;
  for (std::size_t c = 0; c < channels_; ++c) {
    std::memmove(carry_.data() + c * max_shift_,
                 window_.data() + c * window_stride_ + tail,
                 carry_len * sizeof(float));
  }
  obs::global_counters().add("dedisp.stream.chunks");
}

void StreamingSweep::accumulate_plan(std::size_t plan_index,
                                     std::size_t out_begin,
                                     std::size_t out_end) {
  const ShiftPlan& plan = sweep_.plans[plan_index];
  auto& series = series_[plan_index];
  // Ascending channel order per output sample — every contribution to a
  // sample lands in the single flush that completes it, so the addition
  // sequence per sample is exactly dedisperse_plan()'s.
  for (std::size_t c = 0; c < channels_; ++c) {
    const std::uint32_t shift = plan.shifts[c];
    const std::size_t limit =
        std::min<std::size_t>(out_end, total_samples_ - shift);
    const float* row = window_.data() + c * window_stride_ - window_start_;
    for (std::size_t s = out_begin; s < limit; ++s) {
      series[s] += row[s + shift];
    }
  }
}

void StreamingSweep::push_frames(const float* frames, std::size_t num_frames) {
  const std::size_t carry_len = prepare_window(num_frames);
  for (std::size_t c = 0; c < channels_; ++c) {
    float* row = window_.data() + c * window_stride_ + carry_len;
    for (std::size_t s = 0; s < num_frames; ++s) {
      row[s] = frames[s * channels_ + c];
    }
  }
  commit_block(num_frames);
}

void StreamingSweep::push(const Filterbank& fb, std::size_t begin,
                          std::size_t count) {
  if (finalized_) {
    throw std::logic_error("StreamingSweep: push after finalize");
  }
  if (fb.num_channels() != channels_ ||
      fb.num_samples() != total_samples_ ||
      fb.config().sample_time_ms != config_.sample_time_ms) {
    throw std::invalid_argument(
        "StreamingSweep: filterbank geometry does not match the sweep plan");
  }
  if (begin != pushed_) {
    throw std::invalid_argument(
        "StreamingSweep: block starts at sample " + std::to_string(begin) +
        " but the stream is at " + std::to_string(pushed_));
  }
  if (begin + count > total_samples_) {
    throw std::invalid_argument("StreamingSweep: block overruns observation");
  }
  const std::size_t carry_len = prepare_window(count);
  for (std::size_t c = 0; c < channels_; ++c) {
    std::memcpy(window_.data() + c * window_stride_ + carry_len,
                fb.channel_data(c) + begin, count * sizeof(float));
  }
  commit_block(count);
}

std::vector<SinglePulseEvent> StreamingSweep::finalize() {
  if (finalized_) {
    throw std::logic_error("StreamingSweep: finalize called twice");
  }
  if (pushed_ != total_samples_) {
    throw std::logic_error(
        "StreamingSweep: finalize with " + std::to_string(pushed_) + " of " +
        std::to_string(total_samples_) + " samples pushed");
  }
  finalized_ = true;

  auto& tracer = obs::global_tracer();
  obs::ScopedSpan span(tracer, "dedisp.stream.finalize", {}, "dedisp");
  std::vector<std::vector<SinglePulseEvent>> found(sweep_.plans.size());
  for_each_plan([&](std::size_t i) {
    // Tail normalization runs here, exactly once per fully-accumulated
    // series — never per chunk, so overlap-carry samples are rescaled once.
    thread_local std::vector<std::uint32_t> contrib_prefix;
    thread_local DetectScratch detect_scratch;
    normalize_tail(sweep_.plans[i], channels_, series_[i], contrib_prefix);
    detect_events_into(series_[i],
                       grid_.dm_at(sweep_.plans[i].trials.front()),
                       config_.sample_time_ms, params_, detect_scratch,
                       found[i]);
    std::vector<double>().swap(series_[i]);  // done with this plan's series
  });

  std::vector<SinglePulseEvent> events =
      detail::merge_plan_events(sweep_, grid_, params_.dm_stride, found);

  auto& counters = obs::global_counters();
  counters.add("dedisp.stream.trials",
               static_cast<std::int64_t>(sweep_.num_trials));
  counters.add("dedisp.stream.events",
               static_cast<std::int64_t>(events.size()));
  if (span.active()) {
    span.arg("plans", static_cast<std::int64_t>(sweep_.plans.size()));
    span.arg("events", static_cast<std::int64_t>(events.size()));
  }
  return events;
}

}  // namespace drapid
