// SMOTE — Synthetic Minority Oversampling TEchnique (Chawla et al. 2002).
//
// The paper's imbalance treatment (§5.2.1): minority classes are oversampled
// by interpolating each sampled instance toward one of its k nearest
// same-class neighbours, which avoids the overfitting of plain duplication.
// As in the paper, SMOTE is applied only to training folds, never test folds.
#pragma once

#include <cstddef>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {

struct SmoteParams {
  /// Neighbours considered per synthetic sample.
  std::size_t k = 5;
  /// Target size of each minority class, as a fraction of the largest
  /// class (1.0 = fully balanced).
  double target_ratio = 1.0;
  /// Classes at or above target need no oversampling; classes with fewer
  /// than 2 instances cannot be interpolated and are duplicated instead.
};

/// Returns `data` plus synthetic minority instances.
Dataset apply_smote(const Dataset& data, const SmoteParams& params, Rng& rng);

}  // namespace ml
}  // namespace drapid
