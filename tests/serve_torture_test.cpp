// Concurrent archive torture: one writer sealing batches while eight
// readers query continuously. Snapshot isolation means every reader sees
// only whole sealed batches — never a torn record, never an unsealed
// append, never a shrinking archive. Runs under TSan in tools/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/archive.hpp"

namespace drapid {
namespace serve {
namespace {

namespace fs = std::filesystem;

constexpr int kBatches = 60;
constexpr int kPerBatch = 25;
constexpr int kReaders = 8;

ObservationId obs_id(int beam) {
  ObservationId id;
  id.dataset = "TORTURE";
  id.mjd = 60000.0;
  id.ra_deg = 10.0;
  id.dec_deg = 20.0;
  id.beam = beam;
  return id;
}

/// Batch b, slot i: every field derives from (b, i), so a reader can verify
/// any record it observes is exactly what the writer sealed — a torn or
/// half-written record breaks the equations.
CandidateRecord make_record(int batch, int slot) {
  CandidateRecord rec;
  rec.obs = obs_id(batch);
  rec.event.dm = static_cast<double>(batch);
  rec.event.snr = static_cast<double>(batch) + static_cast<double>(slot);
  rec.event.time_s = static_cast<double>(slot);
  rec.event.sample = static_cast<std::int64_t>(batch) * 1000 + slot;
  rec.event.downfact = batch % 32 + 1;
  return rec;
}

TEST(ServeTorture, OneWriterEightReadersSeeOnlySealedBatches) {
  const auto dir = fs::temp_directory_path() / "drapid_serve_torture";
  fs::remove_all(dir);
  CandidateArchive archive(dir.string());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&archive, &done, &failures] {
      std::size_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto results = archive.query({});
        // Whole batches only: a visible unsealed append would break the
        // multiple, a lost batch would shrink the archive.
        if (results.size() % kPerBatch != 0 || results.size() < last_size) {
          ++failures;
          break;
        }
        last_size = results.size();
        // Every record is internally consistent with its (batch, slot).
        std::vector<int> per_batch(kBatches, 0);
        bool bad = false;
        for (const auto& rec : results) {
          const int batch = static_cast<int>(rec.event.dm);
          const int slot = static_cast<int>(rec.event.time_s);
          if (batch < 0 || batch >= kBatches ||
              rec != make_record(batch, slot)) {
            bad = true;
            break;
          }
          ++per_batch[batch];
        }
        // And every observed batch is complete.
        for (int b = 0; b < kBatches && !bad; ++b) {
          if (per_batch[b] != 0 && per_batch[b] != kPerBatch) bad = true;
        }
        if (bad) {
          ++failures;
          break;
        }
      }
    });
  }

  for (int b = 0; b < kBatches; ++b) {
    for (int i = 0; i < kPerBatch; ++i) archive.append(make_record(b, i));
    archive.seal();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(archive.size(), static_cast<std::size_t>(kBatches * kPerBatch));
  const auto final_scan = archive.query({});
  EXPECT_EQ(final_scan.size(), static_cast<std::size_t>(kBatches * kPerBatch));

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace serve
}  // namespace drapid
