#include "synth/survey.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "synth/dispersion.hpp"

namespace drapid {

namespace {

/// Boxcar widths single_pulse_search.py actually uses.
constexpr int kDownfacts[] = {1, 2, 4, 8, 16, 32, 64, 128};

int downfact_for_width(double width_ms, double sample_time_ms) {
  const double samples = width_ms / sample_time_ms;
  int best = 1;
  for (int d : kDownfacts) {
    if (static_cast<double>(d) <= samples * 1.5) best = d;
  }
  return best;
}

}  // namespace

SurveyConfig SurveyConfig::gbt350drift() {
  SurveyConfig cfg;
  cfg.name = "GBT350Drift";
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.obs_length_s = 140.0;  // drift time through the beam
  cfg.sample_time_ms = 0.0819;
  cfg.population.num_pulsars = 48;  // paper §4: 48 distinct pulsars
  cfg.population.num_rrats = 10;
  cfg.noise_clumps_per_observation = 25.0;
  cfg.peaked_rfi_per_observation = 14.0;
  cfg.population.dm_min = 5.0;
  cfg.population.dm_max = 350.0;  // low-frequency survey: nearby sources
  cfg.grid = std::make_shared<DmGrid>(DmGrid::gbt350drift());
  return cfg;
}

SurveyConfig SurveyConfig::palfa() {
  SurveyConfig cfg;
  cfg.name = "PALFA";
  cfg.center_freq_mhz = 1400.0;
  cfg.bandwidth_mhz = 300.0;
  cfg.obs_length_s = 268.0;
  cfg.sample_time_ms = 0.0655;
  cfg.population.num_pulsars = 84;  // paper §4: 98 pulsars and RRATs
  cfg.population.num_rrats = 14;
  cfg.noise_clumps_per_observation = 25.0;
  cfg.peaked_rfi_per_observation = 14.0;
  cfg.population.dm_min = 20.0;
  cfg.population.dm_max = 1000.0;  // Galactic plane: deep DM distribution
  cfg.grid = std::make_shared<DmGrid>(DmGrid::palfa());
  return cfg;
}

SurveyConfig SurveyConfig::fast_crafts() {
  SurveyConfig cfg;
  cfg.name = "FAST-CRAFTS";
  cfg.center_freq_mhz = 1250.0;  // 1.05–1.45 GHz 19-beam receiver
  cfg.bandwidth_mhz = 400.0;
  cfg.obs_length_s = 52.4;       // drift time through one beam
  cfg.sample_time_ms = 0.196608;
  cfg.population.num_pulsars = 60;  // FAST sensitivity: richer population
  cfg.population.num_rrats = 20;
  cfg.population.dm_min = 10.0;
  cfg.population.dm_max = 1200.0;
  cfg.noise_clumps_per_observation = 20.0;
  cfg.peaked_rfi_per_observation = 10.0;
  cfg.rfi_bursts_per_observation = 1.2;
  // Radio-quiet site, but satellites and aviation still cross the band.
  cfg.periodic_broadband_per_observation = 1.5;
  cfg.narrowband_carriers_per_observation = 2.0;
  cfg.swept_chirps_per_observation = 0.8;
  cfg.grid = std::make_shared<DmGrid>(DmGrid::fast_crafts());
  return cfg;
}

SurveyConfig SurveyConfig::ska_mid() {
  SurveyConfig cfg;
  cfg.name = "SKA-Mid";
  cfg.center_freq_mhz = 1400.0;  // band 2
  cfg.bandwidth_mhz = 800.0;
  cfg.obs_length_s = 300.0;
  cfg.sample_time_ms = 0.064;
  cfg.population.num_pulsars = 90;
  cfg.population.num_rrats = 20;
  cfg.population.dm_min = 20.0;
  cfg.population.dm_max = 2500.0;
  cfg.noise_clumps_per_observation = 30.0;
  cfg.peaked_rfi_per_observation = 16.0;
  cfg.rfi_bursts_per_observation = 2.0;
  // The mitigation stress preset: all three structured families busy.
  cfg.periodic_broadband_per_observation = 2.5;
  cfg.narrowband_carriers_per_observation = 3.0;
  cfg.swept_chirps_per_observation = 1.2;
  cfg.grid = std::make_shared<DmGrid>(DmGrid::ska_mid());
  return cfg;
}

void SurveyConfig::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("SurveyConfig '" + name + "': " + what);
  };
  const auto positive = [&](double v, const char* field) {
    if (!std::isfinite(v) || v <= 0.0) {
      fail(std::string(field) + " must be positive and finite, got " +
           std::to_string(v));
    }
  };
  const auto rate = [&](double v, const char* field) {
    if (!std::isfinite(v) || v < 0.0) {
      fail(std::string(field) + " is a rate and must be finite and >= 0, "
           "got " + std::to_string(v));
    }
  };
  positive(center_freq_mhz, "center_freq_mhz");
  positive(bandwidth_mhz, "bandwidth_mhz");
  if (center_freq_mhz - bandwidth_mhz / 2.0 <= 0.0) {
    fail("band bottom " +
         std::to_string(center_freq_mhz - bandwidth_mhz / 2.0) +
         " MHz is not positive — frequency bounds are inverted");
  }
  positive(obs_length_s, "obs_length_s");
  positive(sample_time_ms, "sample_time_ms");
  if (!std::isfinite(snr_threshold)) fail("snr_threshold must be finite");
  rate(noise_events_per_second, "noise_events_per_second");
  rate(rfi_bursts_per_observation, "rfi_bursts_per_observation");
  rate(low_dm_events_per_second, "low_dm_events_per_second");
  rate(noise_clumps_per_observation, "noise_clumps_per_observation");
  rate(peaked_rfi_per_observation, "peaked_rfi_per_observation");
  rate(periodic_broadband_per_observation,
       "periodic_broadband_per_observation");
  rate(narrowband_carriers_per_observation,
       "narrowband_carriers_per_observation");
  rate(swept_chirps_per_observation, "swept_chirps_per_observation");
  rate(beam_radius_deg, "beam_radius_deg");
  if (!std::isfinite(population.dm_min) || !std::isfinite(population.dm_max) ||
      population.dm_min < 0.0 || population.dm_max < population.dm_min) {
    fail("population DM range [" + std::to_string(population.dm_min) + ", " +
         std::to_string(population.dm_max) + "] is inverted or negative");
  }
}

SourceCatalog catalog_from_population(
    const std::vector<SyntheticSource>& sources) {
  SourceCatalog catalog;
  for (const auto& src : sources) {
    catalog.add(CatalogSource{src.name, src.ra_deg, src.dec_deg, src.dm,
                              src.period_s, src.type == SourceType::kRrat});
  }
  return catalog;
}

SurveySimulator::SurveySimulator(SurveyConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  config_.validate();
  if (!config_.grid) {
    throw std::invalid_argument("SurveyConfig '" + config_.name +
                                "': no trial-DM grid");
  }
}

std::vector<SyntheticSource> SurveySimulator::draw_sources() {
  return draw_population(config_.population, rng_);
}

void SurveySimulator::inject_pulse(const SyntheticSource& src, double t0,
                                   double snr0,
                                   std::vector<SinglePulseEvent>& events,
                                   std::vector<GroundTruthPulse>& truth) {
  const DmGrid& grid = *config_.grid;
  GroundTruthPulse gt;
  gt.source_name = src.name;
  gt.type = src.type;
  gt.time_s = t0;
  gt.dm = src.dm;
  gt.width_ms = src.width_ms;

  const std::size_t center = grid.index_of(src.dm);
  const auto emit_at = [&](std::size_t trial) -> bool {
    const double dm_trial = grid.dm_at(trial);
    const double degradation =
        snr_degradation(dm_trial - src.dm, src.width_ms,
                        config_.center_freq_mhz, config_.bandwidth_mhz);
    // Radiometer noise jitters each trial's measured S/N around the model.
    const double snr = snr0 * degradation + rng_.normal(0.0, 0.25);
    if (snr < config_.snr_threshold) return false;
    SinglePulseEvent e;
    e.dm = dm_trial;
    e.snr = snr;
    // Dedispersing at the wrong DM shifts the detected arrival time by the
    // residual delay at band center — the slant visible in DM-vs-time plots.
    const double shift = dispersion_delay_s(src.dm - dm_trial,
                                            config_.center_freq_mhz);
    e.time_s = t0 + shift + rng_.normal(0.0, src.width_ms * 1e-3 / 8.0);
    e.sample = static_cast<std::int64_t>(e.time_s /
                                         (config_.sample_time_ms * 1e-3));
    e.downfact = downfact_for_width(src.width_ms, config_.sample_time_ms);
    events.push_back(e);
    gt.peak_snr = std::max(gt.peak_snr, snr);
    ++gt.num_spes;
    return true;
  };

  // Walk outward from the true DM until the degraded S/N falls below
  // threshold; a few misses in a row ends the walk (noise can revive a
  // trial), and the per-pulse cap bounds very wide responses.
  emit_at(center);
  const std::size_t cap = config_.max_spes_per_pulse;
  int misses = 0;
  for (std::size_t i = center + 1;
       i < grid.size() && misses < 3 && gt.num_spes < cap / 2; ++i) {
    misses = emit_at(i) ? 0 : misses + 1;
  }
  misses = 0;
  for (std::size_t i = center; i-- > 0 && misses < 3 && gt.num_spes < cap;) {
    misses = emit_at(i) ? 0 : misses + 1;
  }

  if (gt.num_spes > 0) truth.push_back(std::move(gt));
}

void SurveySimulator::add_noise(std::vector<SinglePulseEvent>& events) {
  const DmGrid& grid = *config_.grid;
  const auto count = rng_.poisson(config_.noise_events_per_second *
                                  config_.obs_length_s);
  for (std::uint64_t i = 0; i < count; ++i) {
    SinglePulseEvent e;
    e.dm = grid.dm_at(rng_.below(grid.size()));
    // Threshold crossings hug the threshold; an exponential tail above it.
    e.snr = config_.snr_threshold + rng_.exponential(1.4);
    e.time_s = rng_.uniform(0.0, config_.obs_length_s);
    e.sample = static_cast<std::int64_t>(e.time_s /
                                         (config_.sample_time_ms * 1e-3));
    e.downfact = kDownfacts[rng_.below(4)];
    events.push_back(e);
  }
  // Low-DM terrestrial junk: clustered at DM ≈ 0–3.
  const auto junk = rng_.poisson(config_.low_dm_events_per_second *
                                 config_.obs_length_s);
  for (std::uint64_t i = 0; i < junk; ++i) {
    SinglePulseEvent e;
    e.dm = grid.dm_at(grid.index_of(rng_.uniform(0.0, 3.0)));
    e.snr = config_.snr_threshold + rng_.exponential(0.9);
    e.time_s = rng_.uniform(0.0, config_.obs_length_s);
    e.sample = static_cast<std::int64_t>(e.time_s /
                                         (config_.sample_time_ms * 1e-3));
    e.downfact = kDownfacts[rng_.below(3)];
    events.push_back(e);
  }
}

void SurveySimulator::add_rfi(std::vector<SinglePulseEvent>& events) {
  const DmGrid& grid = *config_.grid;
  const auto bursts = rng_.poisson(config_.rfi_bursts_per_observation);
  for (std::uint64_t b = 0; b < bursts; ++b) {
    const double t0 = rng_.uniform(0.0, config_.obs_length_s);
    const double base_snr = rng_.uniform(7.0, 25.0);
    // Broadband impulse: appears over a wide DM range with *flat* S/N (no
    // dispersion peak), exactly what Algorithm 1 should not call a pulse.
    const std::size_t span = grid.size() / 2 + rng_.below(grid.size() / 2);
    const std::size_t stride = 1 + rng_.below(4);
    for (std::size_t i = 0; i < span; i += stride) {
      SinglePulseEvent e;
      e.dm = grid.dm_at(i);
      e.snr = base_snr + rng_.normal(0.0, 0.6);
      e.time_s = t0 + rng_.normal(0.0, 2e-3);
      e.sample = static_cast<std::int64_t>(e.time_s /
                                           (config_.sample_time_ms * 1e-3));
      e.downfact = kDownfacts[2 + rng_.below(4)];
      events.push_back(e);
    }
  }
}

void SurveySimulator::add_noise_clumps(std::vector<SinglePulseEvent>& events) {
  const DmGrid& grid = *config_.grid;
  const auto clumps = rng_.poisson(config_.noise_clumps_per_observation);
  for (std::uint64_t c = 0; c < clumps; ++c) {
    // A clump: 4–40 near-threshold events spread over a small (DM, time)
    // neighbourhood, with an occasional mild random SNR trend — enough for
    // DBSCAN to cluster and for Algorithm 1 to sometimes see a weak "peak".
    const std::size_t center = rng_.below(grid.size());
    const double t0 = rng_.uniform(0.0, config_.obs_length_s);
    const std::size_t count = 4 + rng_.below(37);
    const double span_trials = rng_.uniform(3.0, 25.0);
    const double trend = rng_.normal(0.0, 0.6);  // fake rise/fall per trial
    for (std::size_t i = 0; i < count; ++i) {
      const double offset = rng_.normal(0.0, span_trials / 2.0);
      const auto trial = static_cast<std::size_t>(std::clamp(
          static_cast<double>(center) + offset, 0.0,
          static_cast<double>(grid.size() - 1)));
      SinglePulseEvent e;
      e.dm = grid.dm_at(trial);
      e.snr = config_.snr_threshold + rng_.exponential(1.1) +
              std::max(0.0, trend * (span_trials / 2.0 - std::abs(offset)) /
                                span_trials);
      e.time_s = t0 + rng_.normal(0.0, 0.01);
      e.sample = static_cast<std::int64_t>(e.time_s /
                                           (config_.sample_time_ms * 1e-3));
      e.downfact = kDownfacts[rng_.below(3)];
      events.push_back(e);
    }
  }
}

void SurveySimulator::add_peaked_rfi(std::vector<SinglePulseEvent>& events) {
  const DmGrid& grid = *config_.grid;
  const auto artifacts = rng_.poisson(config_.peaked_rfi_per_observation);
  for (std::uint64_t a = 0; a < artifacts; ++a) {
    // Pulse-mimicking RFI: sweeping/periodic interference that dedisperses
    // into a smooth SNR peak. Its brightness, DM position, shape and time
    // registration all mimic real pulses; what betrays it is *physics* —
    // the width of its SNR-vs-DM response is unrelated to the dispersion
    // relation, so its trial-span is inconsistent with its DM (real pulses
    // span hundreds of fine low-DM trials but only a handful of coarse
    // high-DM trials). That makes the pulsar/RFI discriminator depend on
    // the DM region — the structure the ALM labels expose to learners.
    const double dm0 =
        std::exp(rng_.uniform(std::log(std::max(1.0, config_.population.dm_min)),
                              std::log(grid.max_dm())));
    const std::size_t center = grid.index_of(dm0);
    const double t0 = rng_.uniform(0.0, config_.obs_length_s);
    // Brightness distribution matched to the pulse population.
    const double peak_snr =
        config_.snr_threshold + rng_.lognormal(0.6, 0.8);
    // Width in *trials*, ignoring the DM-dependent spacing real dispersion
    // would impose.
    const double width_trials = rng_.uniform(4.0, 60.0);
    // Sweeping RFI also drifts in detected time across trial DMs, with a
    // slope of plausible dispersion magnitude but arbitrary sign/scale —
    // so the time footprint alone cannot separate it from real pulses.
    const double time_slope =
        dispersion_delay_s(1.0, config_.center_freq_mhz) *
        rng_.uniform(0.3, 1.5) * (rng_.chance(0.5) ? 1.0 : -1.0);
    const int reach = static_cast<int>(width_trials * 3.0);
    for (int o = -reach; o <= reach; ++o) {
      const long trial_signed = static_cast<long>(center) + o;
      if (trial_signed < 0 ||
          trial_signed >= static_cast<long>(grid.size())) {
        continue;
      }
      // Smooth Gaussian ridge: shape statistics (fit r², slopes, skewness)
      // look like a genuine dedispersed peak.
      const double u = static_cast<double>(o) / width_trials;
      const double level = peak_snr * std::exp(-0.5 * u * u);
      const double snr = level + rng_.normal(0.0, 0.3);
      if (snr < config_.snr_threshold) continue;
      SinglePulseEvent e;
      e.dm = grid.dm_at(static_cast<std::size_t>(trial_signed));
      e.snr = snr;
      e.time_s = t0 + time_slope * (e.dm - dm0) + rng_.normal(0.0, 2e-3);
      e.sample = static_cast<std::int64_t>(e.time_s /
                                           (config_.sample_time_ms * 1e-3));
      e.downfact = kDownfacts[1 + rng_.below(4)];
      events.push_back(e);
    }
  }
}

void SurveySimulator::inject_sources(
    const std::vector<SyntheticSource>& visible,
    std::vector<SinglePulseEvent>& events,
    std::vector<GroundTruthPulse>& truth) {
  for (const auto& src : visible) {
    if (src.type == SourceType::kPulsar) {
      const auto rotations =
          static_cast<std::uint64_t>(config_.obs_length_s / src.period_s);
      // Cap the per-source workload; bright millisecond pulsars would
      // otherwise dominate an observation with 10⁵ pulses.
      const std::uint64_t max_pulses = 120;
      const double keep =
          rotations > max_pulses
              ? static_cast<double>(max_pulses) / static_cast<double>(rotations)
              : 1.0;
      for (std::uint64_t r = 0; r < rotations; ++r) {
        if (!rng_.chance(src.emission_rate * keep)) continue;
        const double t0 = (static_cast<double>(r) + rng_.uniform()) *
                          src.period_s;
        const double snr0 = src.median_snr *
                            std::exp(rng_.normal(0.0, src.snr_sigma));
        if (snr0 < config_.snr_threshold) continue;
        inject_pulse(src, t0, snr0, events, truth);
      }
    } else {
      const auto bursts = rng_.poisson(src.emission_rate *
                                       config_.obs_length_s / 3600.0);
      for (std::uint64_t b = 0; b < bursts; ++b) {
        const double t0 = rng_.uniform(0.0, config_.obs_length_s);
        const double snr0 = src.median_snr *
                            std::exp(rng_.normal(0.0, src.snr_sigma));
        if (snr0 < config_.snr_threshold) continue;
        inject_pulse(src, t0, snr0, events, truth);
      }
    }
  }
}

namespace {

void sort_events(std::vector<SinglePulseEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const SinglePulseEvent& a, const SinglePulseEvent& b) {
              if (a.dm != b.dm) return a.dm < b.dm;
              return a.time_s < b.time_s;
            });
}

}  // namespace

SimulatedObservation SurveySimulator::simulate(
    const ObservationId& id, const std::vector<SyntheticSource>& visible) {
  SimulatedObservation out;
  out.data.id = id;
  auto& events = out.data.events;

  inject_sources(visible, events, out.truth);
  add_noise(events);
  add_rfi(events);
  add_noise_clumps(events);
  add_peaked_rfi(events);
  // Guarded so presets predating structured RFI draw nothing from the rng
  // stream and stay byte-identical.
  if (config_.has_structured_rfi()) {
    RfiScenario scenario =
        draw_rfi_scenario(config_, config_.obs_length_s, rng_);
    render_rfi_events(scenario, config_, config_.obs_length_s, rng_, events);
    out.rfi_truth = std::move(scenario.instances);
  }

  sort_events(events);
  return out;
}

MultiBeamObservation SurveySimulator::simulate_multibeam(
    const ObservationId& id, const std::vector<SyntheticSource>& visible,
    std::size_t num_beams, double shared_rfi_fraction) {
  if (num_beams == 0) {
    throw std::invalid_argument("simulate_multibeam: num_beams must be >= 1");
  }
  MultiBeamObservation out;
  // One scenario per pointing: ownership decides which beams see each
  // instance. Shared instances enter through every beam's sidelobes; local
  // ones stay in a single random beam.
  RfiScenario scenario = draw_rfi_scenario(config_, config_.obs_length_s, rng_);
  for (RfiInstance& inst : scenario.instances) {
    if (!rng_.chance(shared_rfi_fraction)) inst.beam = rng_.below(num_beams);
  }

  out.beams.reserve(num_beams);
  for (std::size_t b = 0; b < num_beams; ++b) {
    SimulatedObservation obs;
    obs.data.id = id;
    obs.data.id.beam = id.beam + static_cast<int>(b);
    auto& events = obs.data.events;
    // Astrophysical sources appear only in the on-source beam: a genuine
    // pulse coincident across many beams would have to be extraordinarily
    // bright, which is exactly why multi-beam coincidence rejects RFI.
    if (b == 0) inject_sources(visible, events, obs.truth);
    add_noise(events);
    add_rfi(events);
    add_noise_clumps(events);
    add_peaked_rfi(events);

    RfiScenario beam_view;
    for (const RfiInstance& inst : scenario.instances) {
      if (inst.beam == RfiInstance::kAllBeams) {
        // Sidelobe coupling varies beam to beam: jitter the strength and
        // occasionally drop the instance entirely.
        if (!rng_.chance(0.92)) continue;
        RfiInstance seen = inst;
        seen.strength *= std::exp(rng_.normal(0.0, 0.15));
        beam_view.instances.push_back(seen);
      } else if (inst.beam == b) {
        beam_view.instances.push_back(inst);
      }
    }
    render_rfi_events(beam_view, config_, config_.obs_length_s, rng_, events);
    obs.rfi_truth = std::move(beam_view.instances);

    sort_events(events);
    out.beams.push_back(std::move(obs));
  }
  out.rfi_truth = std::move(scenario.instances);
  return out;
}

std::vector<SimulatedObservation> SurveySimulator::simulate_many(
    std::size_t count, const std::vector<SyntheticSource>& sources,
    double visibility) {
  std::vector<SimulatedObservation> result;
  result.reserve(count);
  const double p_point =
      sources.empty()
          ? 0.0
          : std::min(1.0, visibility * static_cast<double>(sources.size()));
  for (std::size_t i = 0; i < count; ++i) {
    ObservationId id;
    id.dataset = config_.name;
    id.mjd = 56000.0 + static_cast<double>(i) * 0.01;
    id.beam = static_cast<int>(i % 7);
    // Choose the pointing first (a targeted survey points at a catalogued
    // source; otherwise blank sky), then select the in-beam sources by
    // position — so catalogue crossmatching by sky position agrees with
    // the injected truth (§4).
    if (rng_.chance(p_point)) {
      const auto& target = sources[rng_.below(sources.size())];
      id.ra_deg = target.ra_deg + rng_.normal(0.0, 0.05);
      id.dec_deg = target.dec_deg + rng_.normal(0.0, 0.05);
    } else {
      id.ra_deg = rng_.uniform(0.0, 360.0);
      id.dec_deg = rng_.uniform(-30.0, 60.0);
    }
    std::vector<SyntheticSource> visible;
    for (const auto& src : sources) {
      if (angular_separation_deg(id.ra_deg, id.dec_deg, src.ra_deg,
                                 src.dec_deg) <= config_.beam_radius_deg) {
        visible.push_back(src);
      }
    }
    result.push_back(simulate(id, visible));
  }
  return result;
}

}  // namespace drapid
