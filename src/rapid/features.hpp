// Feature extraction for identified single pulses (paper §5.1.3, Table 1).
//
// Each identified single pulse is characterized by a 22-dimensional feature
// vector: the six cluster features of Table 1 (StartTime, StopTime,
// ClusterRank, PulseRank, DMSpacing, SNRRatio) plus sixteen base features
// reconstructed from the description of Devine et al. 2016 [10] — extent,
// brightness, shape and regression-fit statistics of the pulse in SNR-vs-DM
// and DM-vs-time space. SNRPeakDM and AvgSNR are the two features the ALM
// labeling schemes of Table 2 discretize.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "rapid/search.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe_io.hpp"

namespace drapid {

/// Index of each feature in the vector. Order is part of the ML-file format.
enum FeatureIndex : std::size_t {
  // Base features (after [10]):
  kNumSpes = 0,      ///< SPEs in the pulse
  kDmRange,          ///< DM extent of the pulse
  kSnrMax,           ///< maximum SNR ("SNRMax" in the paper)
  kSnrMin,
  kAvgSnr,           ///< mean SNR — ALM brightness feature (Table 2)
  kSnrStdDev,
  kSnrPeakDm,        ///< DM of the brightest SPE — ALM distance feature
  kDmCentroid,       ///< SNR-weighted mean DM
  kDuration,         ///< time extent of the pulse
  kTimeStdDev,
  kSlopeLeft,        ///< regression slope of the rising (low-DM) side
  kSlopeRight,       ///< regression slope of the falling (high-DM) side
  kFitR2Left,        ///< r² of the rising-side fit
  kFitR2Right,       ///< r² of the falling-side fit
  kSnrSkewness,      ///< skewness of the SNR profile
  kSnrKurtosis,      ///< excess kurtosis of the SNR profile
  // Table 1 features:
  kStartTime,        ///< arrival time of the first SPE in the cluster
  kStopTime,         ///< arrival time of the last SPE in the cluster
  kClusterRank,      ///< SNR rank of the cluster within its observation
  kPulseRank,        ///< SNR rank of this peak among the cluster's peaks
  kDmSpacing,        ///< local trial-DM spacing at the peak
  kSnrRatio,         ///< SNR of the pulse's first SPE / maximum SNR
  kFeatureCount
};

struct PulseFeatures {
  static constexpr std::size_t kCount = kFeatureCount;
  std::array<double, kCount> values{};

  double operator[](FeatureIndex i) const {
    return values[static_cast<std::size_t>(i)];
  }
  /// Canonical feature names, aligned with FeatureIndex.
  static const std::array<std::string, kCount>& names();
};

/// Extracts the feature vector for one identified pulse.
///   events      — the cluster's SPEs, DM-sorted (as passed to rapid_search)
///   pulse       — a result of rapid_search over those events
///   cluster     — the cluster-file record (for ClusterRank, Start/StopTime)
///   grid        — the survey's trial grid (for DMSpacing)
///   pulse_rank  — 1-based SNR rank of this pulse among the cluster's pulses
PulseFeatures extract_features(std::span<const SinglePulseEvent> events,
                               const SinglePulse& pulse,
                               const ClusterRecord& cluster, const DmGrid& grid,
                               int pulse_rank);

/// One row of the machine-learning file D-RAPID writes back (Figure 2 stage
/// 3 output): provenance + features + an optional truth label filled in by
/// the benchmark builder ("" = unlabeled).
struct MlRecord {
  ObservationId obs;
  int cluster_id = 0;
  int pulse_index = 0;  ///< index of the pulse within its cluster
  PulseFeatures features;
  std::string truth_label;
};

/// CSV serialization of ML files.
extern const char kMlFileHeaderPrefix[];
std::string ml_file_header();
CsvRow format_ml_row(const MlRecord& rec);
MlRecord parse_ml_row(const CsvRow& row);
void write_ml_file(std::ostream& out, const std::vector<MlRecord>& records);
std::vector<MlRecord> read_ml_file(std::istream& in);

}  // namespace drapid
