// End-to-end pipeline glue (Figure 2): survey simulation → DBSCAN clustering
// → data/cluster files → D-RAPID search → labeled ML records.
//
// This is the workflow the examples and benchmarks drive. Because the survey
// is synthetic, every identified pulse can be labeled against exact ground
// truth — the stand-in for the paper's manually validated benchmarks (§4).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "clustering/dbscan.hpp"
#include "drapid/driver.hpp"
#include "synth/survey.hpp"

namespace drapid {

struct PipelineConfig {
  SurveyConfig survey;
  std::size_t num_observations = 10;
  /// Probability that a given source falls inside a given beam.
  double visibility = 0.04;
  std::uint64_t seed = 1;
  DbscanParams dbscan;
  DrapidConfig drapid;
};

/// Output of pipeline stages 1–2 (pre-processing + clustering), serialized
/// in the file formats D-RAPID loads.
struct PipelineData {
  std::vector<SyntheticSource> sources;  ///< the population behind the data
  std::vector<SimulatedObservation> observations;
  std::vector<ClusterRecord> clusters;
  std::string data_csv;     ///< the big SPE "data file" contents
  std::string cluster_csv;  ///< the "cluster file" contents
  std::size_t total_spes = 0;

  /// Cluster-size distribution (for the §6.1 statistics: min/median/max).
  std::vector<double> cluster_sizes() const;
};

/// Runs stages 1–2: simulates the survey and clusters every observation.
PipelineData prepare_pipeline_data(const PipelineConfig& config);

/// Truth labels for identified pulses: "" = non-pulsar (noise/RFI),
/// "pulsar"/"rrat" otherwise. A record matches an injected pulse when its
/// SNRPeakDM is within `dm_tolerance` of the source DM and the injection
/// time falls inside the record's cluster time window (padded by
/// `time_tolerance_s`).
void label_records(std::vector<MlRecord>& records,
                   const std::vector<SimulatedObservation>& observations,
                   double dm_tolerance = 3.0, double time_tolerance_s = 0.2);

/// Same matching rule, driven by bare truth tuples keyed by observation —
/// for callers (e.g. the CLI) that load ground truth from a file rather
/// than holding SimulatedObservations.
void label_records(std::vector<MlRecord>& records,
                   const std::map<std::string, std::vector<GroundTruthPulse>>&
                       truth_by_observation,
                   double dm_tolerance = 3.0, double time_tolerance_s = 0.2);

/// The paper's §4 PALFA labeling: crossmatch each identified pulse against
/// a known-source catalogue by the observation's sky position (within
/// `beam_radius_deg`) and the pulse's SNRPeakDM (within `dm_tolerance`).
/// Labels "pulsar"/"rrat"/"" in place.
void label_records_by_catalog(std::vector<MlRecord>& records,
                              const SourceCatalog& catalog,
                              double beam_radius_deg = 0.3,
                              double dm_tolerance = 3.0);

/// Convenience: uploads the files, runs D-RAPID, labels the result.
struct PipelineRun {
  PipelineData data;
  DrapidResult result;
};
PipelineRun run_full_pipeline(Engine& engine, BlockStore& store,
                              const PipelineConfig& config);

}  // namespace drapid
