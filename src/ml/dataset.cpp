#include "ml/dataset.hpp"

#include <stdexcept>

namespace drapid {
namespace ml {

Dataset::Dataset(std::vector<std::string> feature_names,
                 std::vector<std::string> class_names)
    : feature_names_(std::move(feature_names)),
      class_names_(std::move(class_names)) {}

void Dataset::ensure_owned() {
  if (!storage_) {
    storage_ = std::make_shared<Storage>();
    rows_.clear();
    view_ = false;
    return;
  }
  if (storage_.use_count() == 1 && !view_) return;
  auto owned = std::make_shared<Storage>();
  owned->values.reserve(num_rows_ * num_features());
  owned->labels.reserve(num_rows_);
  for (std::size_t i = 0; i < num_rows_; ++i) {
    const auto x = instance(i);
    owned->values.insert(owned->values.end(), x.begin(), x.end());
    owned->labels.push_back(label(i));
  }
  storage_ = std::move(owned);
  rows_.clear();
  view_ = false;
}

void Dataset::add(std::span<const double> x, int y) {
  if (x.size() != num_features()) {
    throw std::invalid_argument("instance has " + std::to_string(x.size()) +
                                " features, dataset expects " +
                                std::to_string(num_features()));
  }
  if (y < 0 || static_cast<std::size_t>(y) >= num_classes()) {
    throw std::invalid_argument("class index out of range: " +
                                std::to_string(y));
  }
  ensure_owned();
  storage_->values.insert(storage_->values.end(), x.begin(), x.end());
  storage_->labels.push_back(y);
  ++num_rows_;
}

std::vector<int> Dataset::labels() const {
  if (!view_) return storage_ ? storage_->labels : std::vector<int>{};
  std::vector<int> out;
  out.reserve(num_rows_);
  for (std::size_t i = 0; i < num_rows_; ++i) out.push_back(label(i));
  return out;
}

std::vector<double> Dataset::feature_column(std::size_t f) const {
  std::vector<double> column;
  column.reserve(num_instances());
  for (std::size_t i = 0; i < num_instances(); ++i) {
    column.push_back(instance(i)[f]);
  }
  return column;
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(num_classes(), 0);
  for (std::size_t i = 0; i < num_instances(); ++i) {
    ++counts[static_cast<std::size_t>(label(i))];
  }
  return counts;
}

Dataset Dataset::select_features(
    const std::vector<std::size_t>& features) const {
  std::vector<std::string> names;
  names.reserve(features.size());
  for (std::size_t f : features) {
    if (f >= num_features()) {
      throw std::invalid_argument("feature index out of range");
    }
    names.push_back(feature_names_[f]);
  }
  Dataset out(std::move(names), class_names_);
  std::vector<double> row(features.size());
  for (std::size_t i = 0; i < num_instances(); ++i) {
    const auto x = instance(i);
    for (std::size_t j = 0; j < features.size(); ++j) row[j] = x[features[j]];
    out.add(row, label(i));
  }
  return out;
}

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  Dataset out = *this;  // shares storage
  out.rows_.clear();
  out.rows_.reserve(rows.size());
  for (std::size_t r : rows) {
    if (r >= num_instances()) {
      throw std::invalid_argument("row index out of range");
    }
    out.rows_.push_back(view_ ? rows_[r] : static_cast<std::uint32_t>(r));
  }
  out.num_rows_ = rows.size();
  out.view_ = true;
  return out;
}

}  // namespace ml
}  // namespace drapid
