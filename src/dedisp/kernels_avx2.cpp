// AVX2 kernel implementations. This translation unit is the only one
// compiled with -mavx2 (see CMakeLists.txt), so AVX2 instructions cannot
// leak into code paths that run on non-AVX2 hosts; the dispatcher in
// kernels.cpp only routes here after a CPUID check.
//
// All kernels are exact (see kernels.hpp): the elementwise ones perform the
// identical per-element operation as the scalar loops, and select_kth is an
// exact selection, so results are bit-identical across paths. No FMA is
// used anywhere — a fused multiply-add would round differently than the
// scalar code.
#include "dedisp/kernels.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace drapid {
namespace kernels {
namespace avx2 {

void accumulate_f32(double* out, const float* in, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_loadu_ps(in + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(f));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(f, 1));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i), lo));
    _mm256_storeu_pd(out + i + 4,
                     _mm256_add_pd(_mm256_loadu_pd(out + i + 4), hi));
  }
  for (; i < n; ++i) out[i] += in[i];
}

void accumulate_f64(double* out, const double* in, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(out + i),
                                            _mm256_loadu_pd(in + i)));
  }
  for (; i < n; ++i) out[i] += in[i];
}

void combine_f64(double* out, const double* const* in, std::size_t ngroups,
                 std::size_t n) {
  if (ngroups == 0) {
    std::fill(out, out + n, 0.0);
    return;
  }
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d acc = _mm256_loadu_pd(in[0] + i);
    for (std::size_t g = 1; g < ngroups; ++g) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(in[g] + i));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < n; ++i) {
    double acc = in[0][i];
    for (std::size_t g = 1; g < ngroups; ++g) acc += in[g][i];
    out[i] = acc;
  }
}

void abs_deviation(double* out, const double* in, std::size_t n,
                   double center) {
  const __m256d ctr = _mm256_set1_pd(center);
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_sub_pd(_mm256_loadu_pd(in + i), ctr);
    _mm256_storeu_pd(out + i, _mm256_andnot_pd(sign, x));
  }
  for (; i < n; ++i) out[i] = std::abs(in[i] - center);
}

namespace {

/// For each 4-bit lane mask: a permutevar8x32 index vector that packs the
/// set (predicate-true) double lanes to the front in ascending lane order
/// and the clear lanes behind them — one permutation serves both the left
/// (front lanes valid) and right (back lanes valid) stores of a partition.
struct PermTable {
  alignas(32) std::int32_t idx[16][8];
};

constexpr PermTable make_perm_table() {
  PermTable t{};
  for (int m = 0; m < 16; ++m) {
    int pos = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((m >> lane) & 1) {
        t.idx[m][2 * pos] = 2 * lane;
        t.idx[m][2 * pos + 1] = 2 * lane + 1;
        ++pos;
      }
    }
    for (int lane = 0; lane < 4; ++lane) {
      if (!((m >> lane) & 1)) {
        t.idx[m][2 * pos] = 2 * lane;
        t.idx[m][2 * pos + 1] = 2 * lane + 1;
        ++pos;
      }
    }
  }
  return t;
}

constexpr PermTable kPerm = make_perm_table();

/// Out-of-place two-way partition of src[0..n) by (x < pivot), or
/// (x <= pivot) when kLe: predicate-true elements land at out[0..lo), the
/// rest at out[lo..n) (order within each side unspecified). Returns lo.
///
/// Each 4-lane block is permuted so true lanes pack to the front and false
/// lanes to the back, then stored twice: once at the right cursor (back
/// lanes valid) and once at the left cursor (front lanes valid), junk lanes
/// falling into the still-unwritten gap between the cursors. The vector
/// loop keeps the gap >= 8 so neither store can clobber valid data; the
/// last < 8 elements partition scalar into the remaining gap.
template <bool kLe>
std::size_t partition4(const double* src, std::size_t n, double pivot,
                       double* out) {
  std::size_t lo = 0;
  std::size_t hi = n;
  std::size_t i = 0;
  const __m256d pv = _mm256_set1_pd(pivot);
  for (; i + 8 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(src + i);
    const __m256d cmp = kLe ? _mm256_cmp_pd(x, pv, _CMP_LE_OQ)
                            : _mm256_cmp_pd(x, pv, _CMP_LT_OQ);
    const int mask = _mm256_movemask_pd(cmp);
    const int cnt = __builtin_popcount(static_cast<unsigned>(mask));
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPerm.idx[mask]));
    const __m256d packed = _mm256_castsi256_pd(
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(x), perm));
    _mm256_storeu_pd(out + hi - 4, packed);
    hi -= static_cast<std::size_t>(4 - cnt);
    _mm256_storeu_pd(out + lo, packed);
    lo += static_cast<std::size_t>(cnt);
  }
  for (; i < n; ++i) {
    const double x = src[i];
    const bool left = kLe ? (x <= pivot) : (x < pivot);
    if (left) {
      out[lo++] = x;
    } else {
      out[--hi] = x;
    }
  }
  return lo;
}

inline double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

double select_kth(double* v, double* scratch, std::size_t n, std::size_t k) {
  // Branch-free partition quickselect, ping-ponging between the caller's
  // array and the scratch buffer. Noise-like data makes the comparisons in
  // introselect ~50% mispredicted; the vector partition has no data-dependent
  // branches at all. Pivots are median-of-3; a partition budget guards
  // adversarial inputs, falling back to introselect on whatever remains.
  double* bufs[2] = {v, scratch};
  double* src = v;
  int cur = 0;
  constexpr std::size_t kSmall = 32;
  int budget = 64;
  while (n > kSmall && budget-- > 0) {
    double* dst = bufs[1 - cur];
    const double pivot = median3(src[0], src[n / 2], src[n - 1]);
    const std::size_t nl = partition4<false>(src, n, pivot, dst);
    if (k < nl) {
      src = dst;
      n = nl;
      cur = 1 - cur;
      continue;
    }
    if (nl == 0) {
      // Every element >= pivot. Split the pivot-equal run off the front so
      // the recursion always shrinks; the pivot is an actual element, so the
      // run is non-empty.
      const std::size_t ne = partition4<true>(src, n, pivot, dst);
      if (k < ne) return pivot;
      src = dst + ne;
      n -= ne;
      k -= ne;
      cur = 1 - cur;
      continue;
    }
    src = dst + nl;
    n -= nl;
    k -= nl;
    cur = 1 - cur;
  }
  std::nth_element(src, src + static_cast<long>(k), src + n);
  return src[k];
}

namespace {

/// kByteMask[m] has byte i = 1 where bit i of m is set (little-endian), so a
/// 4-bit movemask ANDs into four certificate bytes with one 32-bit op.
constexpr std::uint32_t byte_mask(int m) {
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    if ((m >> i) & 1) out |= std::uint32_t{1} << (8 * i);
  }
  return out;
}

constexpr std::uint32_t kByteMask[16] = {
    byte_mask(0),  byte_mask(1),  byte_mask(2),  byte_mask(3),
    byte_mask(4),  byte_mask(5),  byte_mask(6),  byte_mask(7),
    byte_mask(8),  byte_mask(9),  byte_mask(10), byte_mask(11),
    byte_mask(12), byte_mask(13), byte_mask(14), byte_mask(15)};

}  // namespace

void certify_below(const double* prefix, std::size_t begin, std::size_t end,
                   std::size_t back, std::size_t ahead, double bound,
                   unsigned char* below) {
  const __m256d bd = _mm256_set1_pd(bound);
  std::size_t c = begin;
  for (; c + 4 <= end; c += 4) {
    const __m256d hi = _mm256_loadu_pd(prefix + c + ahead);
    const __m256d lo = _mm256_loadu_pd(prefix + c - back);
    const int m =
        _mm256_movemask_pd(_mm256_cmp_pd(_mm256_sub_pd(hi, lo), bd,
                                         _CMP_LT_OQ));
    std::uint32_t bytes;
    std::memcpy(&bytes, below + c, sizeof(bytes));
    bytes &= kByteMask[m];
    std::memcpy(below + c, &bytes, sizeof(bytes));
  }
  for (; c < end; ++c) {
    below[c] &=
        static_cast<unsigned char>(prefix[c + ahead] - prefix[c - back] <
                                   bound);
  }
}

}  // namespace avx2
}  // namespace kernels
}  // namespace drapid

#endif  // x86
