// Behavioural tests for individual learners beyond the shared
// train/predict contract: decision boundaries, convergence, and the
// execution-performance properties the paper's experiments rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/mlp.hpp"
#include "ml/random_forest.hpp"
#include "ml/rules.hpp"
#include "ml/smo.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace ml {
namespace {

Dataset linear_boundary(std::size_t n, double margin, std::uint64_t seed) {
  Dataset d({"x", "y"}, {"neg", "pos"});
  Rng rng(seed);
  std::size_t added = 0;
  while (added < n) {
    const double x = rng.uniform(-3, 3);
    const double y = rng.uniform(-3, 3);
    const double score = x + 2.0 * y;  // true boundary: x + 2y = 0
    if (std::abs(score) < margin) continue;
    d.add(std::vector<double>{x, y}, score > 0 ? 1 : 0);
    ++added;
  }
  return d;
}

TEST(SmoBehavior, LearnsALinearBoundaryWithMargin) {
  const Dataset d = linear_boundary(300, 0.5, 3);
  SmoClassifier smo({}, 1);
  smo.train(d);
  // Probe points well inside each half-space.
  EXPECT_EQ(smo.predict(std::vector<double>{2.0, 2.0}), 1);
  EXPECT_EQ(smo.predict(std::vector<double>{-2.0, -2.0}), 0);
  EXPECT_EQ(smo.predict(std::vector<double>{0.0, 1.5}), 1);
  EXPECT_EQ(smo.predict(std::vector<double>{0.0, -1.5}), 0);
}

TEST(SmoBehavior, MachineCountGrowsQuadraticallyWithClasses) {
  // The RQ5 mechanism for SMO's training-time inflation under ALM.
  const auto machines_for = [](std::size_t classes) {
    std::vector<std::string> names;
    for (std::size_t c = 0; c < classes; ++c) {
      names.push_back(std::to_string(c));
    }
    Dataset d({"x"}, names);
    Rng rng(7);
    for (std::size_t c = 0; c < classes; ++c) {
      for (int i = 0; i < 20; ++i) {
        d.add(std::vector<double>{static_cast<double>(c) * 3 + rng.normal()},
              static_cast<int>(c));
      }
    }
    SmoClassifier smo({}, 1);
    smo.train(d);
    return smo.num_binary_machines();
  };
  EXPECT_EQ(machines_for(2), 1u);
  EXPECT_EQ(machines_for(4), 6u);
  EXPECT_EQ(machines_for(8), 28u);
}

TEST(MlpBehavior, LearnsXorUnlikeASingleSplit) {
  // The classic nonlinearity check: XOR needs the hidden layer.
  Dataset d({"a", "b"}, {"zero", "one"});
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const bool a = rng.chance(0.5);
    const bool b = rng.chance(0.5);
    d.add(std::vector<double>{a + rng.normal(0.0, 0.08),
                              b + rng.normal(0.0, 0.08)},
          (a != b) ? 1 : 0);
  }
  MlpParams params;
  params.epochs = 300;
  MlpClassifier mlp(params, 3);
  mlp.train(d);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    correct += mlp.predict(d.instance(i)) == d.label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / d.num_instances(), 0.95);
}

TEST(MlpBehavior, WeightUpdatesScaleWithInputCount) {
  // The Figure 6(b) mechanism: fewer inputs, fewer first-layer weights.
  const auto updates_for = [](std::size_t features) {
    std::vector<std::string> names;
    for (std::size_t f = 0; f < features; ++f) {
      names.push_back("f" + std::to_string(f));
    }
    Dataset d(std::move(names), {"a", "b"});
    Rng rng(11);
    std::vector<double> x(features);
    for (int i = 0; i < 100; ++i) {
      for (auto& v : x) v = rng.normal();
      d.add(x, rng.chance(0.5) ? 1 : 0);
    }
    MlpParams params;
    params.epochs = 5;
    params.hidden = 12;  // fixed so only the input layer varies
    MlpClassifier mlp(params, 1);
    mlp.train(d);
    return mlp.weight_updates();
  };
  const auto full = updates_for(22);
  const auto reduced = updates_for(10);
  // 22 -> 10 inputs removes 12 x 12 first-layer weights per update step.
  EXPECT_LT(reduced, full);
  EXPECT_NEAR(static_cast<double>(reduced) / static_cast<double>(full),
              (10.0 * 12 + 12 + 2 * 13) / (22.0 * 12 + 12 + 2 * 13), 0.02);
}

TEST(TreeBehavior, SplitEvaluationsGrowWithInstanceCount) {
  const auto evals_for = [](std::size_t n) {
    Dataset d({"x", "y"}, {"a", "b"});
    Rng rng(13);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.uniform(-1, 1);
      d.add(std::vector<double>{x, rng.normal()}, x > 0 ? 1 : 0);
    }
    DecisionTree tree;
    tree.train(d);
    return tree.split_evaluations();
  };
  EXPECT_LT(evals_for(100), evals_for(1000));
}

TEST(ForestBehavior, BaggingDiversifiesTrees) {
  // Two trees of the same forest must generally differ (bootstrap + random
  // feature subsets); identical trees would mean broken seeding.
  Dataset d({"x", "y", "z"}, {"a", "b"});
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(-1, 1);
    d.add(std::vector<double>{x, rng.normal(), rng.normal()},
          x + 0.3 * rng.normal() > 0 ? 1 : 0);
  }
  ForestParams params;
  params.num_trees = 8;
  RandomForest forest(params, 1);
  forest.train(d);
  // Probe disagreement: at least one point where trees disagree with the
  // ensemble consensus would show diversity; check via vote margins being
  // non-unanimous somewhere near the boundary.
  bool saw_disagreement = false;
  for (double x = -0.3; x <= 0.3 && !saw_disagreement; x += 0.05) {
    // Re-derive per-tree predictions through the ensemble interface: a
    // unanimous forest predicts the same label for tiny perturbations; a
    // diverse one flips near the boundary.
    const int a = forest.predict(std::vector<double>{x, 0.0, 0.0});
    const int b = forest.predict(std::vector<double>{x + 0.02, 0.0, 0.0});
    saw_disagreement |= (a != b);
  }
  EXPECT_TRUE(saw_disagreement);
}

TEST(PartBehavior, RuleListShrinksOnSimpleData) {
  Dataset d({"x"}, {"a", "b"});
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, i < 50 ? 0 : 1);
  }
  PartClassifier part({}, 1);
  part.train(d);
  // One threshold separates the data: PART needs very few rules.
  EXPECT_LE(part.rules().size(), 3u);
}

}  // namespace
}  // namespace ml
}  // namespace drapid
