#include "dataflow/spill.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/checksum.hpp"

namespace drapid {

namespace {

/// Spill file layout: magic, record count, (klen, k, vlen, v)*, checksum.
/// The trailing checksum covers everything between magic and itself, so any
/// flipped byte — count, a length prefix, or payload — fails validation.
/// The checksum scheme itself (seed + fold) lives in util/checksum.hpp and
/// is shared with the candidate-archive segment format.
constexpr std::uint64_t kSpillMagic = 0x3153504C4C495244ULL;  // "DRILLPS1"
constexpr std::size_t kHeaderBytes = 16;   // magic + count
constexpr std::size_t kTrailerBytes = 8;   // checksum

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

[[noreturn]] void spill_fail(const std::string& file, const std::string& why) {
  throw SpillError("spill file " + file + ": " + why);
}

/// Damages a freshly-written spill file per the injected fault: flips one
/// byte past the magic (detected by length validation or the checksum) or
/// deletes the file outright.
void apply_spill_fault(const std::string& path, SpillFault fault) {
  namespace fs = std::filesystem;
  if (fault == SpillFault::kLose) {
    std::error_code ec;
    fs::remove(path, ec);
    return;
  }
  if (fault != SpillFault::kCorrupt) return;
  const auto size = static_cast<std::size_t>(fs::file_size(path));
  const std::size_t offset = std::max<std::size_t>(8, size / 2);
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

}  // namespace

CachedStringRdd::CachedStringRdd(Engine& engine, StringRdd rdd,
                                 const std::string& name, Producer producer)
    : engine_(engine), name_(name), producer_(std::move(producer)) {
  bytes_ = rdd.estimated_bytes();
  partitioner_id_ = rdd.partitioner_id;
  auto& stage = engine_.begin_stage(name_ + ":cache", rdd.num_partitions());
  if (bytes_ <= engine_.config().total_memory_bytes()) {
    in_memory_ = std::move(rdd);
    for (std::size_t p = 0; p < in_memory_.num_partitions(); ++p) {
      // A worker-resident RDD is cached as-is (the pool keeps the bytes);
      // the cache stage still records the counts the local backend sees.
      stage.tasks[p].records_in =
          in_memory_.resident ? pool_set_records(in_memory_.resident, p)
                              : in_memory_.partitions[p].size();
    }
    return;
  }
  spilled_ = true;
  // Spill writes walk the partitions directly, and the spill stage runs
  // without a StageIO contract (in-process on every backend) — pull any
  // worker-resident partitions back to the driver first.
  ensure_local(rdd);
  files_.resize(rdd.num_partitions());
  engine_.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    auto& task = ctx.metrics();
    files_[p] = write_partition(rdd.partitions[p], task);
    task.records_in = rdd.partitions[p].size();
    rdd.partitions[p].clear();
    rdd.partitions[p].shrink_to_fit();
    // Injected spill damage (corrupt/lose) strikes after a healthy write,
    // the way silent disk corruption does.
    apply_spill_fault(files_[p], engine_.faults().spill_fault(name_, p));
  });
}

std::string CachedStringRdd::write_partition(
    const std::vector<StringRdd::Pair>& records, TaskMetrics& task) const {
  const std::string path = engine_.next_spill_path();
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SpillError("cannot open spill file " + path);
  // Serialize the whole partition into one contiguous buffer and hand the
  // stream a single write, instead of four tiny writes per record that each
  // pay the stream's put-area bookkeeping. The byte layout (and therefore
  // the checksum and the read path) is unchanged.
  std::size_t payload = 0;
  for (const auto& [k, v] : records) payload += k.size() + v.size() + 16;
  std::string buffer;
  buffer.reserve(kHeaderBytes + payload + kTrailerBytes);
  const auto append_u64 = [&buffer](std::uint64_t v) {
    buffer.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_u64(kSpillMagic);
  append_u64(records.size());
  for (const auto& [k, v] : records) {
    append_u64(k.size());
    buffer.append(k);
    append_u64(v.size());
    buffer.append(v);
  }
  task.spill_bytes += payload;
  // The checksum folds byte-by-byte over exactly the bytes between the magic
  // and itself, so folding the assembled buffer once is identical to folding
  // each field as it is written.
  const std::uint64_t checksum =
      checksum_fold(kChecksumSeed, buffer.data() + sizeof(kSpillMagic),
                    buffer.size() - sizeof(kSpillMagic));
  append_u64(checksum);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out) throw SpillError("spill write failed: " + path);
  return path;
}

void CachedStringRdd::read_partition(std::size_t p,
                                     std::vector<StringRdd::Pair>& out,
                                     TaskMetrics& task) const {
  const std::string& file = files_[p];
  std::ifstream in(file, std::ios::binary);
  if (!in) spill_fail(file, "missing or unreadable (lost replica?)");
  std::error_code ec;
  const auto file_size =
      static_cast<std::size_t>(std::filesystem::file_size(file, ec));
  if (ec) spill_fail(file, "cannot stat: " + ec.message());
  if (file_size < kHeaderBytes + kTrailerBytes) {
    spill_fail(file, "truncated: " + std::to_string(file_size) +
                         " bytes is smaller than header + checksum");
  }
  if (read_u64(in) != kSpillMagic) {
    spill_fail(file, "bad header magic (not a spill file, or corrupted)");
  }
  // Bytes between the count prefix we are about to read and the trailing
  // checksum; every length prefix is validated against it so a corrupt
  // prefix cannot trigger a multi-GB allocation or a silent short read.
  std::size_t remaining = file_size - 8 - kTrailerBytes;
  const std::uint64_t count = read_u64(in);
  remaining -= 8;
  std::uint64_t checksum = checksum_fold_u64(kChecksumSeed, count);
  if (count > remaining / 16) {
    spill_fail(file, "record count " + std::to_string(count) +
                         " impossible for " + std::to_string(remaining) +
                         " payload bytes");
  }
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto read_string = [&](const char* what) {
      if (remaining < 8) spill_fail(file, std::string(what) + ": truncated");
      const std::uint64_t len = read_u64(in);
      remaining -= 8;
      if (len > remaining) {
        spill_fail(file, std::string(what) + " length " + std::to_string(len) +
                             " exceeds the " + std::to_string(remaining) +
                             " bytes left in the file");
      }
      std::string s(len, '\0');
      in.read(s.data(), static_cast<std::streamsize>(len));
      remaining -= len;
      checksum = checksum_fold_u64(checksum, len);
      checksum = checksum_fold(checksum, s.data(), s.size());
      return s;
    };
    std::string k = read_string("record key");
    std::string v = read_string("record value");
    task.spill_bytes += k.size() + v.size() + 16;
    out.emplace_back(std::move(k), std::move(v));
  }
  if (remaining != 0) {
    spill_fail(file, std::to_string(remaining) +
                         " unexpected trailing payload bytes");
  }
  if (read_u64(in) != checksum) {
    spill_fail(file, "checksum mismatch (corrupted on disk)");
  }
  if (!in) spill_fail(file, "read failed");
  task.records_out = out.size();
}

CachedStringRdd::StringRdd CachedStringRdd::materialize() {
  if (!spilled_) return in_memory_;
  StringRdd rdd;
  rdd.partitions.resize(files_.size());
  rdd.partitioner_id = partitioner_id_;
  auto& stage = engine_.begin_stage(name_ + ":materialize", files_.size());
  std::vector<char> lost(files_.size(), 0);
  engine_.run_stage(stage, [&](TaskContext& ctx) {
    const std::size_t p = ctx.partition();
    try {
      read_partition(p, rdd.partitions[p], ctx.metrics());
    } catch (const SpillError&) {
      // Lineage recovery happens below, outside the parallel phase — the
      // producer may itself run engine stages. Without a producer the
      // partition is unrecoverable: let the descriptive error fly.
      if (!producer_) throw;
      rdd.partitions[p].clear();
      lost[p] = 1;
    }
  });

  std::size_t lost_count = 0;
  for (char l : lost) lost_count += l != 0;
  if (lost_count > 0) {
    auto& recover = engine_.begin_stage(name_ + ":recover", lost_count);
    std::size_t slot = 0;
    for (std::size_t p = 0; p < files_.size(); ++p) {
      if (!lost[p]) continue;
      auto& task = recover.tasks[slot++];
      task.partition = p;
      task.attempts = 1;
      rdd.partitions[p] = producer_(p);
      detail::record_input(task, rdd.partitions[p]);
      // Re-spill the recomputed partition so later reads are healthy (no
      // fault re-injection: recovery writes are assumed to land).
      files_[p] = write_partition(rdd.partitions[p], task);
      // The failed read counts as a lost attempt of the materialize task.
      stage.tasks[p].attempts += 1;
      stage.tasks[p].retry_cost += stage.tasks[p].compute_cost;
      ++recovered_;
      obs::global_counters().add("spill.recoveries");
      if (engine_.tracer().enabled()) {
        obs::Json args = obs::Json::object();
        args.set("rdd", name_);
        args.set("partition", static_cast<std::int64_t>(p));
        engine_.tracer().instant("spill.recover", std::move(args), "fault");
      }
    }
  }
  return rdd;
}

const CachedStringRdd::StringRdd& CachedStringRdd::borrow() {
  if (!spilled_) return in_memory_;
  if (!restored_) restored_ = materialize();
  return *restored_;
}

}  // namespace drapid
