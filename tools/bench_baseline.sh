#!/usr/bin/env bash
# Records the micro-benchmark baseline bundle that the regression gate in
# tools/check.sh (DRAPID_BENCH_CHECK=1) compares against.
#
# Runs the micro suites at a pinned --seed/--scale so the measured work
# is identical run to run, collects each tool's --json-out run report
# (which carries one "time.<benchmark>" metric per benchmark, see
# bench/micro_support.hpp), and bundles them into one file:
#
#   {"schema_version": 1, "benches": {"bench_micro_dataflow": {...}, ...}}
#
# tools/report_diff understands the bundle via --bench <tool>, so the gate
# diffs a fresh bundle against the committed BENCH_PR10.json per tool.
#
# Usage: tools/bench_baseline.sh [out.json]   (default: BENCH_PR10.json)
# Env:   BUILD_DIR               build tree with the bench targets (build)
#        DRAPID_BENCH_MIN_TIME   --benchmark_min_time per benchmark (0.2)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_PR10.json}"
MIN_TIME="${DRAPID_BENCH_MIN_TIME:-0.2}"
SEED=42
SCALE=1.0
BENCHES=(bench_micro_dataflow bench_micro_rapid bench_micro_dedisp
         bench_micro_ml bench_micro_cv bench_serve bench_rfi)

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "bench_baseline: missing $bin (build the bench targets first)" >&2
    exit 2
  fi
  echo "=== $bench (seed=$SEED scale=$SCALE min_time=$MIN_TIME) ==="
  "$bin" --seed "$SEED" --scale "$SCALE" \
         --benchmark_min_time="$MIN_TIME" \
         --json-out "$TMP/$bench.json" > /dev/null
done

python3 - "$OUT" "$TMP" "${BENCHES[@]}" <<'PYEOF'
import json
import sys

out, tmp, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
bundle = {"schema_version": 1, "benches": {}}
for bench in benches:
    with open(f"{tmp}/{bench}.json") as f:
        bundle["benches"][bench] = json.load(f)
with open(out, "w") as f:
    json.dump(bundle, f, indent=2)
    f.write("\n")
PYEOF
echo "bench_baseline: wrote $OUT"
