#include "spe/spe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace drapid {
namespace {

ObservationId sample_obs() {
  ObservationId id;
  id.dataset = "PALFA";
  id.mjd = 55555.1234567;
  id.ra_deg = 290.25;
  id.dec_deg = 11.5;
  id.beam = 3;
  return id;
}

TEST(ObservationId, KeyRoundTrips) {
  const ObservationId id = sample_obs();
  const ObservationId back = ObservationId::from_key(id.key());
  EXPECT_EQ(back, id);
}

TEST(ObservationId, DistinctObservationsHaveDistinctKeys) {
  ObservationId a = sample_obs();
  ObservationId b = a;
  b.beam = 4;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.mjd += 0.001;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.dataset = "GBT350Drift";
  EXPECT_NE(a.key(), b.key());
}

TEST(ObservationId, MalformedKeyThrows) {
  EXPECT_THROW(ObservationId::from_key("only|three|parts"),
               std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|b|c|d|notanint"),
               std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|nan?|0|0|1"), std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|1|2|3|4|extra"),
               std::runtime_error);
}

TEST(ObservationId, RejectsTrailingGarbageInNumericFields) {
  // from_chars stops at the first bad character; the remainder must be
  // treated as garbage, not silently dropped.
  EXPECT_THROW(ObservationId::from_key("a|1.5x|2|3|4"), std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|1|2|3|4junk"), std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|1|2 |3|4"), std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|1|2|3|4.5"), std::runtime_error);
}

TEST(ObservationId, RejectsEmbeddedNulAndNonFiniteSpellings) {
  // An embedded NUL would round-trip into a different observation identity.
  EXPECT_THROW(ObservationId::from_key(std::string("a\0b|1|2|3|4", 11)),
               std::runtime_error);
  EXPECT_THROW(ObservationId::from_key(std::string("a|1|2|3|4\0", 10)),
               std::runtime_error);
  // from_chars accepts "inf"/"nan"/overflowing spellings; keys must not.
  EXPECT_THROW(ObservationId::from_key("a|inf|2|3|4"), std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|1|nan|3|4"), std::runtime_error);
  EXPECT_THROW(ObservationId::from_key("a|1|2|1e999|4"), std::runtime_error);
}

TEST(ObservationId, KeyRejectsUnrepresentableIds) {
  // Ids that key() cannot spell reversibly must fail at key(), not produce
  // an ambiguous key that from_key() mis-parses.
  ObservationId id = sample_obs();
  id.dataset = "PAL|FA";  // '|' collides with the field separator
  EXPECT_THROW(id.key(), std::runtime_error);
  id = sample_obs();
  id.dataset = std::string("PA\0LFA", 6);
  EXPECT_THROW(id.key(), std::runtime_error);
  id = sample_obs();
  id.mjd = std::numeric_limits<double>::infinity();
  EXPECT_THROW(id.key(), std::runtime_error);
  id = sample_obs();
  id.dec_deg = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(id.key(), std::runtime_error);
}

TEST(ObservationId, FuzzedIdsRoundTripExactly) {
  // 10k randomized ids (harsh magnitudes included) survive key -> from_key
  // byte-exactly.
  Rng rng(1234);
  const char* datasets[] = {"PALFA", "GBT350Drift", "x", "a b c",
                            "surveys/2014-run"};
  for (int i = 0; i < 10000; ++i) {
    ObservationId id;
    id.dataset = datasets[rng.below(5)];
    const double scale = std::pow(10.0, rng.uniform(-12.0, 12.0));
    id.mjd = rng.uniform(-1.0, 1.0) * scale;
    id.ra_deg = rng.uniform(0.0, 360.0);
    id.dec_deg = rng.uniform(-90.0, 90.0);
    id.beam = static_cast<int>(rng.below(1u << 16)) - (1 << 15);
    const ObservationId back = ObservationId::from_key(id.key());
    ASSERT_EQ(back, id) << "iteration " << i << " key " << id.key();
  }
}

TEST(ObservationId, KeyFormatIsStable) {
  // Keys are persisted shuffle keys: the to_chars formatting must spell
  // doubles exactly as the historical ostringstream-with-precision(17) path
  // did (printf %.17g — shortest-of-17-significant-digits).
  const auto reference = [](const ObservationId& id) {
    std::ostringstream out;
    out.precision(17);
    out << id.dataset << '|' << id.mjd << '|' << id.ra_deg << '|'
        << id.dec_deg << '|' << id.beam;
    return out.str();
  };
  std::vector<ObservationId> ids;
  ids.push_back(sample_obs());
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    ObservationId id;
    id.dataset = i % 2 == 0 ? "GBT350Drift" : "PALFA";
    id.mjd = 50000.0 + rng.uniform(0.0, 10000.0);
    id.ra_deg = rng.uniform(0.0, 360.0);
    id.dec_deg = rng.uniform(-90.0, 90.0);
    id.beam = static_cast<int>(rng.below(8));
    ids.push_back(id);
  }
  // And a few awkward spellings: integers, negatives, tiny magnitudes.
  ObservationId awkward = sample_obs();
  awkward.mjd = 56000.0;
  awkward.ra_deg = 1e-7;
  awkward.dec_deg = -0.125;
  ids.push_back(awkward);
  for (const auto& id : ids) {
    EXPECT_EQ(id.key(), reference(id));
    EXPECT_EQ(ObservationId::from_key(id.key()), id);
  }
}

TEST(SinglePulseEvent, EqualityComparesAllFields) {
  SinglePulseEvent a{10.0, 6.5, 12.25, 4900, 2};
  SinglePulseEvent b = a;
  EXPECT_EQ(a, b);
  b.snr = 6.6;
  EXPECT_NE(a, b);
}

TEST(ClusterRecord, EqualityComparesObservation) {
  ClusterRecord a;
  a.obs = sample_obs();
  a.cluster_id = 7;
  a.num_spes = 19;
  ClusterRecord b = a;
  EXPECT_EQ(a, b);
  b.obs.beam = 9;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace drapid
