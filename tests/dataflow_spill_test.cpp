#include "dataflow/spill.hpp"

#include <gtest/gtest.h>

namespace drapid {
namespace {

using StringRdd = Rdd<std::string, std::string>;

StringRdd make_rdd(Engine& engine, std::size_t pairs, std::size_t value_size) {
  std::vector<std::pair<std::string, std::string>> data;
  for (std::size_t i = 0; i < pairs; ++i) {
    data.emplace_back("key" + std::to_string(i),
                      std::string(value_size, static_cast<char>('a' + i % 26)));
  }
  return parallelize(engine, std::move(data), 4);
}

EngineConfig config_with_budget(std::size_t bytes) {
  EngineConfig cfg;
  cfg.num_executors = 1;
  cfg.executor_memory_bytes = bytes;
  cfg.worker_threads = 2;
  return cfg;
}

TEST(Spill, SmallDatasetStaysInMemory) {
  Engine engine(config_with_budget(10u << 20));
  auto rdd = make_rdd(engine, 100, 50);
  const auto expected = rdd.collect();
  CachedStringRdd cached(engine, std::move(rdd), "test");
  EXPECT_FALSE(cached.spilled());
  EXPECT_EQ(cached.materialize().collect(), expected);
  EXPECT_EQ(engine.metrics().total_spill_bytes(), 0u);
}

TEST(Spill, OversizedDatasetSpillsAndRoundTrips) {
  Engine engine(config_with_budget(1024));  // 1 KB budget forces the spill
  auto rdd = make_rdd(engine, 200, 100);
  rdd.partitioner_id = 1234;
  const auto expected = rdd.collect();
  CachedStringRdd cached(engine, std::move(rdd), "big");
  EXPECT_TRUE(cached.spilled());
  EXPECT_GT(engine.metrics().total_spill_bytes(), 0u);
  const auto back = cached.materialize();
  EXPECT_EQ(back.collect(), expected);
  EXPECT_EQ(back.partitioner_id, 1234u);  // layout metadata survives
}

TEST(Spill, MaterializeRecordsReadBytes) {
  Engine engine(config_with_budget(1024));
  CachedStringRdd cached(engine, make_rdd(engine, 100, 64), "s");
  ASSERT_TRUE(cached.spilled());
  const std::size_t after_write = engine.metrics().total_spill_bytes();
  cached.materialize();
  EXPECT_GT(engine.metrics().total_spill_bytes(), after_write)
      << "read-back must add spill traffic";
}

TEST(Spill, RepeatedMaterializeIsConsistent) {
  Engine engine(config_with_budget(512));
  auto rdd = make_rdd(engine, 50, 40);
  const auto expected = rdd.collect();
  CachedStringRdd cached(engine, std::move(rdd), "r");
  EXPECT_EQ(cached.materialize().collect(), expected);
  EXPECT_EQ(cached.materialize().collect(), expected);
}

TEST(Spill, HandlesEmptyValuesAndKeys) {
  Engine engine(config_with_budget(1));
  std::vector<std::pair<std::string, std::string>> data{
      {"", ""}, {"k", ""}, {"", "v"}};
  auto rdd = parallelize(engine, std::move(data), 2);
  const auto expected = rdd.collect();
  CachedStringRdd cached(engine, std::move(rdd), "edge");
  ASSERT_TRUE(cached.spilled());
  EXPECT_EQ(cached.materialize().collect(), expected);
}

TEST(Spill, BudgetScalesWithExecutorCount) {
  // The same dataset that spills on 1 executor fits on 8 — the Figure 4
  // mechanism.
  const auto run = [](std::size_t executors) {
    EngineConfig cfg;
    cfg.num_executors = executors;
    cfg.executor_memory_bytes = 4096;
    cfg.worker_threads = 2;
    Engine engine(cfg);
    auto rdd = make_rdd(engine, 150, 80);
    CachedStringRdd cached(engine, std::move(rdd), "scale");
    return cached.spilled();
  };
  EXPECT_TRUE(run(1));
  EXPECT_FALSE(run(8));
}

}  // namespace
}  // namespace drapid
