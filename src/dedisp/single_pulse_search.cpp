#include "dedisp/single_pulse_search.hpp"

#include "dedisp/kernels.hpp"
#include "dedisp/rfi_mitigation.hpp"
#include "dedisp/subband_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "synth/dispersion.hpp"
#include "util/flat_hash.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace drapid {

std::vector<std::uint32_t> dispersion_shifts(const Filterbank& fb, double dm) {
  const std::size_t n = fb.num_samples();
  if (n > static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    // The clamp value itself must fit the uint32 shift entries.
    throw std::domain_error(
        "dispersion_shifts: observation of " + std::to_string(n) +
        " samples exceeds the 2^32-1 shift range");
  }
  const double dt_s = fb.config().sample_time_ms * 1e-3;
  std::vector<std::uint32_t> shifts(fb.num_channels());
  const double ref_delay = dispersion_delay_s(dm, fb.channel_freq_mhz(0));
  for (std::size_t c = 0; c < fb.num_channels(); ++c) {
    const double delay =
        dispersion_delay_s(dm, fb.channel_freq_mhz(c)) - ref_delay;
    const double rounded = delay / dt_s + 0.5;
    // A negative or NaN shift would cast to uint32 as undefined behavior /
    // silent wraparound (a negative DM makes every non-reference delay
    // negative; a NaN frequency poisons the delay). Fail loudly instead.
    if (!(rounded >= 0.0)) {
      throw std::domain_error(
          "dispersion_shifts: channel " + std::to_string(c) + " at DM " +
          std::to_string(dm) + " has negative or NaN sample shift " +
          std::to_string(rounded) +
          " (negative DMs relative to the reference channel are not "
          "searchable)");
    }
    // A shift of num_samples already contributes nothing; saturating there
    // keeps the vector (and dedup keys) bounded for extreme DMs — this is
    // deliberate saturation, not wraparound, and covers delays beyond the
    // uint32 range as well.
    shifts[c] = rounded >= static_cast<double>(n)
                    ? static_cast<std::uint32_t>(n)
                    : static_cast<std::uint32_t>(rounded);
  }
  return shifts;
}

SweepPlan build_sweep_plan(const Filterbank& fb, const DmGrid& grid,
                           std::size_t dm_stride) {
  return build_sweep_plan(fb, grid, dm_stride, {});
}

SweepPlan build_sweep_plan(const Filterbank& fb, const DmGrid& grid,
                           std::size_t dm_stride,
                           const std::vector<std::uint8_t>& channel_mask) {
  const std::size_t channels = fb.num_channels();
  std::uint32_t active = 0;
  if (!channel_mask.empty()) {
    if (channel_mask.size() != channels) {
      throw std::invalid_argument(
          "build_sweep_plan: channel mask has " +
          std::to_string(channel_mask.size()) + " entries for " +
          std::to_string(channels) + " channels");
    }
    for (std::uint8_t m : channel_mask) {
      if (m == 0) ++active;
    }
    if (active == 0) {
      throw std::invalid_argument(
          "build_sweep_plan: channel mask excludes every channel");
    }
  }
  const auto saturated = static_cast<std::uint32_t>(fb.num_samples());
  SweepPlan sweep;
  const std::size_t stride = std::max<std::size_t>(1, dm_stride);
  // Dedup key: the raw bytes of the shift vector. Shift vectors are a
  // monotone step function of DM, so duplicates form contiguous runs, but
  // the hash map keeps the grouping correct regardless.
  FlatHashMap<std::string, std::uint32_t> index;
  std::string key;
  for (std::size_t trial = 0; trial < grid.size(); trial += stride) {
    auto shifts = dispersion_shifts(fb, grid.dm_at(trial));
    if (active != 0 && active != channels) {
      // Masked channels take the "contributes nothing" saturation value —
      // they drop out of the accumulation, the dedup key, and the analytic
      // contributor counts with no special cases downstream.
      for (std::size_t c = 0; c < channels; ++c) {
        if (channel_mask[c]) shifts[c] = saturated;
      }
    }
    key.assign(reinterpret_cast<const char*>(shifts.data()),
               shifts.size() * sizeof(std::uint32_t));
    auto [entry, inserted] =
        index.try_emplace(key, static_cast<std::uint32_t>(sweep.plans.size()));
    if (inserted) {
      ShiftPlan plan;
      if (active != 0 && active != channels) {
        // max_shift over surviving channels only: the saturated masked
        // entries would otherwise stretch the streaming carry window (and
        // the tail-normalization span) to the whole observation.
        std::uint32_t max_shift = 0;
        for (std::size_t c = 0; c < channels; ++c) {
          if (!channel_mask[c]) max_shift = std::max(max_shift, shifts[c]);
        }
        plan.max_shift = max_shift;
        plan.active_channels = active;
      } else {
        plan.max_shift = shifts.empty()
                             ? 0
                             : *std::max_element(shifts.begin(), shifts.end());
      }
      plan.shifts = std::move(shifts);
      sweep.plans.push_back(std::move(plan));
    }
    sweep.plans[entry->second].trials.push_back(trial);
    sweep.plan_of_trial.push_back(entry->second);
    ++sweep.num_trials;
  }
  return sweep;
}

void dedisperse_plan(const Filterbank& fb, const ShiftPlan& plan,
                     DedispScratch& scratch) {
  const std::size_t n = fb.num_samples();
  const std::size_t channels = fb.num_channels();
  auto& series = scratch.series;
  series.assign(n, 0.0);
  // Channel-major accumulation: for each channel the reads and writes are
  // both contiguous, and every sample still sums its channels in ascending
  // channel order — the exact summation order of dedisperse().
  for (std::size_t c = 0; c < channels; ++c) {
    const std::uint32_t shift = plan.shifts[c];
    const std::size_t limit = n - static_cast<std::size_t>(shift);
    kernels::accumulate_f32(series.data(), fb.channel_data(c) + shift, limit);
  }

  normalize_tail(plan, channels, series, scratch.contrib_prefix);
}

void normalize_tail(const ShiftPlan& plan, std::size_t channels,
                    std::vector<double>& series,
                    std::vector<std::uint32_t>& prefix) {
  const std::size_t n = series.size();
  // contributors[s] — the number of channels whose shifted data still covers
  // sample s — equals |{c : shifts[c] <= n-1-s}|, so it comes from a
  // counting pass over the shift vector instead of a per-sample increment in
  // the accumulation loop. Samples covered by every channel need no
  // renormalization and are skipped outright.
  const std::size_t m = std::min<std::size_t>(plan.max_shift, n);
  prefix.assign(m + 1, 0);
  for (std::size_t c = 0; c < channels; ++c) {
    if (plan.shifts[c] < n) ++prefix[plan.shifts[c]];
  }
  for (std::size_t v = 1; v <= m; ++v) prefix[v] += prefix[v - 1];
  // A masked plan rescales to its active channel count: masked channels
  // contribute no samples anywhere, so the "full" noise level is the
  // reduced band's — exactly the series a filterbank with those channels
  // physically removed would produce.
  const std::size_t effective =
      plan.active_channels != 0 ? plan.active_channels : channels;
  const double full = static_cast<double>(effective);
  // Head samples (s <= n-1-m) are covered by every active channel (m < n
  // implies every counted shift <= m, so prefix[m] == effective) and need no
  // renormalization; only the max_shift-long tail is touched.
  const std::size_t head = n > m ? n - m : 0;
  for (std::size_t s = head; s < n; ++s) {
    const std::uint32_t contributors = prefix[n - 1 - s];
    if (contributors > 0 &&
        static_cast<std::size_t>(contributors) < effective) {
      series[s] *= full / static_cast<double>(contributors);
    }
  }
}

std::vector<double> dedisperse(const Filterbank& fb, double dm) {
  ShiftPlan plan;
  plan.shifts = dispersion_shifts(fb, dm);
  plan.max_shift = plan.shifts.empty()
                       ? 0
                       : *std::max_element(plan.shifts.begin(),
                                           plan.shifts.end());
  DedispScratch scratch;
  dedisperse_plan(fb, plan, scratch);
  return std::move(scratch.series);
}

/// Robust location/scale from the median and the median absolute deviation,
/// through the selection kernel (kernels.hpp). select_kth consumes its
/// buffers, so the workspace is refilled from `values` before the MAD pass —
/// the absolute deviations of a permuted copy are a permutation of the
/// originals, so both selections return exactly the values the seed's
/// in-place nth_element produced.
std::pair<double, double> robust_stats(const std::vector<double>& values,
                                       std::vector<double>& workspace,
                                       std::vector<double>& select_scratch) {
  if (values.empty()) return {0.0, 0.0};
  const std::size_t size = values.size();
  const std::size_t mid = size / 2;
  workspace.resize(size);
  select_scratch.resize(size);
  std::copy(values.begin(), values.end(), workspace.begin());
  const double median =
      kernels::select_kth(workspace.data(), select_scratch.data(), size, mid);
  // select_kth consumed the workspace; refill and take deviations in one
  // fused pass straight from the untouched input.
  kernels::abs_deviation(workspace.data(), values.data(), size, median);
  const double mad =
      kernels::select_kth(workspace.data(), select_scratch.data(), size, mid);
  // MAD at (or numerically indistinguishable from) zero means the series
  // has no measurable noise scale — constant, single-sample, or fully
  // masked input. Report scale 0.0 and let callers refuse to standardize:
  // the old 1.0 floor turned raw boxcar sums into fake "S/N" values, and a
  // genuinely tiny MAD inflated any stray sample into an unbounded one.
  const double sigma = mad > 1e-12 ? mad * 1.4826 : 0.0;
  return {median, sigma};
}

void detect_events_into(const std::vector<double>& series, double dm,
                        double sample_time_ms,
                        const SinglePulseSearchParams& params,
                        DetectScratch& scratch,
                        std::vector<SinglePulseEvent>& out) {
  const std::size_t n = series.size();
  if (n == 0) return;
  const auto [median, sigma] = robust_stats(series, scratch.stats_workspace,
                                            scratch.select_scratch);
  // Degenerate-series guard: with no noise scale there is no S/N — every
  // detection would divide by zero (or by a floor that makes the numbers
  // meaningless). A constant series carries no pulse; report nothing.
  if (!(sigma > 0.0)) return;

  // best S/N and width per sample across boxcars
  auto& prefix = scratch.prefix;
  prefix.resize(n + 1);
  prefix[0] = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    prefix[s + 1] = prefix[s] + (series[s] - median);
  }
  // A width-w boxcar starting at s is attributed to its central sample
  // s + w/2, so the boxcars covering one center are a fixed stencil around
  // it. Scanning center-outermost keeps the running best in registers and
  // the prefix reads local, and visits each center's widths in the same
  // list order (with the same strict-improvement tie-break) as a
  // width-outermost scan — best_snr/best_width come out identical.
  struct Boxcar {
    std::size_t back;   ///< center - start  (w/2)
    std::size_t ahead;  ///< end - center    (w - w/2)
    double norm;
    double below_bound;  ///< diff < bound certifies diff/norm < threshold
    int width;
  };
  constexpr std::size_t kStackBoxcars = 16;
  Boxcar stack_boxcars[kStackBoxcars];
  std::vector<Boxcar> heap_boxcars;
  Boxcar* boxcars = stack_boxcars;
  if (params.boxcar_widths.size() > kStackBoxcars) {
    heap_boxcars.resize(params.boxcar_widths.size());
    boxcars = heap_boxcars.data();
  }
  std::size_t num_boxcars = 0;
  for (int w : params.boxcar_widths) {
    if (w <= 0 || static_cast<std::size_t>(w) > n) continue;
    const auto uw = static_cast<std::size_t>(w);
    const double norm = sigma * std::sqrt(static_cast<double>(w));
    // Conservative division-free certificate: diff/norm carries at most a
    // few ulp of rounding error, so diff < threshold*norm*(1 - 1e-12)
    // guarantees the rounded S/N is below threshold. Samples inside the
    // 1e-12 relative band fall through to the exact path.
    boxcars[num_boxcars++] = {
        uw / 2, uw - uw / 2, norm,
        params.snr_threshold * norm * (1.0 - 1e-12), w};
  }
  // Only samples that end up part of an above-threshold island influence
  // the output events (below-threshold samples are merely skipped over),
  // so almost every center takes the certificate fast path: no division,
  // no best-width bookkeeping. The certificate is evaluated boxcar-outer
  // through the vectorized kernel — each boxcar ANDs its compare into a
  // byte mask over its applicable centers, which computes exactly the
  // AND-over-boxcars the old short-circuit center loop did. The handful of
  // centers a boxcar pushes near threshold compute their exact best S/N
  // and width the way a width-outermost scan would: widths in list order,
  // strict improvement.
  const bool can_certify = params.snr_threshold > 0.0;
  auto& below = scratch.below;
  below.assign(n, can_certify ? 1 : 0);
  if (can_certify) {
    for (std::size_t b = 0; b < num_boxcars; ++b) {
      const Boxcar& box = boxcars[b];
      // Centers with c >= back and c + ahead <= n; every prefix read stays
      // inside the n+1 entries.
      const std::size_t begin = box.back;
      const std::size_t end = n >= box.ahead ? n - box.ahead + 1 : 0;
      if (begin >= end) continue;
      kernels::certify_below(prefix.data(), begin, end, box.back, box.ahead,
                             box.below_bound, below.data());
    }
  }
  // Exact best S/N and width for one center, the way a width-outermost scan
  // would see it: widths in list order, strict improvement. Only called for
  // the handful of uncertified centers.
  const auto exact_best = [&](std::size_t c, double& best, int& width) {
    best = 0.0;
    width = 1;
    for (std::size_t b = 0; b < num_boxcars; ++b) {
      const Boxcar& box = boxcars[b];
      if (c < box.back || n - c < box.ahead) continue;
      const double snr = (prefix[c + box.ahead] - prefix[c - box.back]) /
                         box.norm;
      if (snr > best) {
        best = snr;
        width = box.width;
      }
    }
  };

  // Local maxima above threshold, merging anything within the detecting
  // width (one event per pulse, PRESTO-style). A certified center's best
  // S/N is below threshold by construction, so the island scan treats the
  // certificate byte as "below" directly and computes the exact S/N only
  // where the certificate declined — no per-sample best arrays at all.
  std::size_t s = 0;
  while (s < n) {
    double best;
    int width;
    if (below[s]) {
      ++s;
      continue;
    }
    exact_best(s, best, width);
    if (best < params.snr_threshold) {
      ++s;
      continue;
    }
    // Extend over the contiguous above-threshold island; keep the peak
    // (strictly-greater comparison — first peak wins ties, exactly like the
    // array-based scan).
    double peak_snr = best;
    int peak_width = width;
    std::size_t peak = s;
    std::size_t end = s + 1;
    while (end < n && !below[end]) {
      exact_best(end, best, width);
      if (best < params.snr_threshold) break;
      if (best > peak_snr) {
        peak_snr = best;
        peak_width = width;
        peak = end;
      }
      ++end;
    }
    SinglePulseEvent e;
    e.dm = dm;
    e.snr = peak_snr;
    e.sample = static_cast<std::int64_t>(peak);
    e.time_s = static_cast<double>(peak) * sample_time_ms * 1e-3;
    e.downfact = peak_width;
    out.push_back(e);
    s = end;
  }
}

std::vector<SinglePulseEvent> detect_events(
    const std::vector<double>& series, double dm, double sample_time_ms,
    const SinglePulseSearchParams& params) {
  std::vector<SinglePulseEvent> events;
  DetectScratch scratch;
  detect_events_into(series, dm, sample_time_ms, params, scratch, events);
  return events;
}

namespace detail {

std::vector<SinglePulseEvent> merge_plan_events(
    const SweepPlan& sweep, const DmGrid& grid, std::size_t dm_stride,
    const std::vector<std::vector<SinglePulseEvent>>& found) {
  // Deterministic merge: walk the strided trial sequence in order (exactly
  // the order the per-trial loop appended events in) and stamp each trial's
  // nominal DM into its plan's shared event list.
  std::vector<SinglePulseEvent> events;
  const std::size_t stride = std::max<std::size_t>(1, dm_stride);
  for (std::size_t t = 0; t < sweep.num_trials; ++t) {
    const std::uint32_t p = sweep.plan_of_trial[t];
    const double dm = grid.dm_at(t * stride);
    for (SinglePulseEvent e : found[p]) {
      e.dm = dm;
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const SinglePulseEvent& a, const SinglePulseEvent& b) {
              if (a.dm != b.dm) return a.dm < b.dm;
              return a.time_s < b.time_s;
            });
  return events;
}

}  // namespace detail

const char* sweep_method_name(SweepMethod method) {
  return method == SweepMethod::kSubband ? "subband" : "exact";
}

SweepMethod parse_sweep_method(const std::string& name) {
  if (name == "exact") return SweepMethod::kExact;
  if (name == "subband") return SweepMethod::kSubband;
  throw std::invalid_argument("unknown sweep method '" + name +
                              "' (expected exact|subband)");
}

std::vector<SinglePulseEvent> single_pulse_search(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params) {
  if (params.rfi.policy != MitigationPolicy::kOff) {
    // The mitigation stage (rfi_mitigation.cpp) estimates/applies the
    // cleaning and re-enters here with policy kOff and the mask resolved.
    return detail::mitigated_single_pulse_search(fb, grid, params);
  }
  if (params.method == SweepMethod::kSubband) {
    return subband_single_pulse_search(fb, grid, params);
  }
  auto& tracer = obs::global_tracer();
  obs::ScopedSpan sweep_span(tracer, "dedisp.sweep", {}, "dedisp");
  Stopwatch watch;

  const SweepPlan sweep =
      build_sweep_plan(fb, grid, params.dm_stride, params.channel_mask);

  // One event list per unique shift plan, detected with that plan's first
  // trial DM (the DM only lands in the events' `dm` field, so duplicate
  // trials reuse the list with their own nominal DM substituted).
  std::vector<std::vector<SinglePulseEvent>> found(sweep.plans.size());
  const auto run_plan = [&](std::size_t i) {
    // Process-lifetime per-thread scratch: a sweep allocates nothing per
    // plan once each worker's buffers have grown to the series length.
    thread_local DedispScratch dedisp_scratch;
    thread_local DetectScratch detect_scratch;
    obs::ScopedSpan span(tracer, "dedisp.plan", {}, "dedisp");
    const ShiftPlan& plan = sweep.plans[i];
    dedisperse_plan(fb, plan, dedisp_scratch);
    detect_events_into(dedisp_scratch.series, grid.dm_at(plan.trials.front()),
                       fb.config().sample_time_ms, params, detect_scratch,
                       found[i]);
    if (span.active()) {
      span.arg("trials", static_cast<std::int64_t>(plan.trials.size()));
      span.arg("events", static_cast<std::int64_t>(found[i].size()));
    }
  };
  const std::size_t sweep_threads = params.sweep_threads();
  if (sweep_threads > 1 && sweep.plans.size() > 1) {
    ThreadPool pool(sweep_threads);
    pool.parallel_for(sweep.plans.size(), run_plan);
  } else {
    for (std::size_t i = 0; i < sweep.plans.size(); ++i) run_plan(i);
  }

  std::vector<SinglePulseEvent> events =
      detail::merge_plan_events(sweep, grid, params.dm_stride, found);

  const double elapsed = watch.elapsed_seconds();
  auto& counters = obs::global_counters();
  counters.add("dedisp.trials",
               static_cast<std::int64_t>(sweep.num_trials));
  counters.add("dedisp.plans_unique",
               static_cast<std::int64_t>(sweep.plans.size()));
  counters.add("dedisp.plan_dedup_hits",
               static_cast<std::int64_t>(sweep.num_trials -
                                         sweep.plans.size()));
  counters.add("dedisp.events", static_cast<std::int64_t>(events.size()));
  const double samples =
      static_cast<double>(sweep.plans.size() * fb.num_samples());
  if (elapsed > 0.0) {
    counters.set_gauge("dedisp.samples_per_s", samples / elapsed);
  }
  if (sweep_span.active()) {
    sweep_span.arg("trials", static_cast<std::int64_t>(sweep.num_trials));
    sweep_span.arg("plans_unique",
                   static_cast<std::int64_t>(sweep.plans.size()));
    sweep_span.arg("dedup_hits",
                   static_cast<std::int64_t>(sweep.num_trials -
                                             sweep.plans.size()));
    sweep_span.arg("events", static_cast<std::int64_t>(events.size()));
    sweep_span.arg("threads", static_cast<std::int64_t>(sweep_threads));
    sweep_span.arg("kernel", kernels::dispatch_name());
  }
  return events;
}

}  // namespace drapid
