// File formats exchanged between pipeline stages (Figure 2 of the paper):
//
//  * PRESTO-style ".singlepulse" files — one per observation, '#'-prefixed
//    header, whitespace columns: DM  Sigma  Time(s)  Sample  Downfact.
//  * The big "data file" — CSV with every SPE of a data set, each row
//    prefixed by the observation descriptors that become the RDD key.
//  * The "cluster file" — CSV with one row per DBSCAN cluster, same key
//    prefix, listing the cluster extent D-RAPID must search.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "spe/spe.hpp"
#include "util/csv.hpp"

namespace drapid {

/// All SPEs of one observation.
struct ObservationData {
  ObservationId id;
  std::vector<SinglePulseEvent> events;
};

// --- PRESTO-style .singlepulse ---------------------------------------------

void write_singlepulse(std::ostream& out,
                       const std::vector<SinglePulseEvent>& events);
std::vector<SinglePulseEvent> read_singlepulse(std::istream& in);

// --- Keyed CSV "data file" rows --------------------------------------------

/// CSV header used by data files (descriptor columns then SPE columns).
extern const char kDataFileHeader[];

CsvRow format_data_row(const ObservationId& obs, const SinglePulseEvent& spe);

/// Parses one data-file row; throws std::runtime_error on malformed rows.
void parse_data_row(const CsvRow& row, ObservationId& obs,
                    SinglePulseEvent& spe);

/// Writes a whole data set (header + one row per SPE per observation).
void write_data_file(std::ostream& out,
                     const std::vector<ObservationData>& observations);
void write_data_file(const std::string& path,
                     const std::vector<ObservationData>& observations);

/// Reads a data file, grouping rows back into observations (grouped by key,
/// preserving first-appearance order).
std::vector<ObservationData> read_data_file(std::istream& in);
std::vector<ObservationData> read_data_file(const std::string& path);

// --- Keyed CSV "cluster file" rows ------------------------------------------

extern const char kClusterFileHeader[];

CsvRow format_cluster_row(const ClusterRecord& rec);
ClusterRecord parse_cluster_row(const CsvRow& row);

void write_cluster_file(std::ostream& out,
                        const std::vector<ClusterRecord>& clusters);
void write_cluster_file(const std::string& path,
                        const std::vector<ClusterRecord>& clusters);
std::vector<ClusterRecord> read_cluster_file(std::istream& in);
std::vector<ClusterRecord> read_cluster_file(const std::string& path);

// --- Binary candidate records (archive segments) ----------------------------
//
// The candidate archive stores one keyed SPE per record inside checksummed
// segment files. A record is self-delimiting:
//
//   u32 key_len | key bytes (ObservationId::key()) |
//   f64 dm | f64 snr | f64 time_s | i64 sample | i32 downfact
//
// Fixed-width fields are raw little-endian host encodings (segments are
// machine-local, like the dataflow spill files they share a checksum with).

/// One keyed single-pulse candidate, as archived.
struct CandidateRecord {
  ObservationId obs;
  SinglePulseEvent event;

  friend bool operator==(const CandidateRecord&,
                         const CandidateRecord&) = default;
};

/// Appends the binary encoding of one candidate to `out`. Throws
/// std::invalid_argument if the id cannot round-trip (see ObservationId::key).
void append_candidate_record(std::string& out, const CandidateRecord& rec);

/// Decodes one candidate from `data` starting at `offset`, advancing
/// `offset` past it. Throws std::runtime_error on a truncated or malformed
/// record (bad length, key that from_key() rejects).
CandidateRecord decode_candidate_record(const char* data, std::size_t size,
                                        std::size_t& offset);

}  // namespace drapid
