// Benchmark-set construction — the stand-in for the paper's labeled
// GBT350Drift and PALFA single-pulse benchmarks (§4).
//
// The paper combined single pulses from known pulsars/RRATs (5,204 and
// 3,170) with 100,000 verified negatives from noise and RFI. Here the full
// pipeline (simulate → cluster → RAPID search → truth labels) runs in
// batches until the requested numbers of positives and negatives have been
// identified; every example is a *really identified* single pulse with its
// 22 extracted features, and the label comes from the simulator's exact
// ground truth instead of manual inspection.
#pragma once

#include <cstdint>
#include <vector>

#include "clustering/dbscan.hpp"
#include "ml/alm.hpp"
#include "ml/dataset.hpp"
#include "rapid/features.hpp"
#include "synth/survey.hpp"

namespace drapid {

/// One identified single pulse with ground truth.
struct LabeledPulse {
  PulseFeatures features;
  bool is_pulsar = false;
  bool is_rrat = false;
};

struct BenchmarkConfig {
  SurveyConfig survey;
  std::size_t target_positives = 400;
  std::size_t target_negatives = 2000;
  std::uint64_t seed = 1;
  /// Sources per beam is visibility × population size.
  double visibility = 0.08;
  std::size_t observations_per_batch = 4;
  /// Stop after this many batches even if targets are not met.
  std::size_t max_batches = 60;
  DbscanParams dbscan;
  RapidParams rapid;
};

/// Runs pipeline batches until both targets are met (or max_batches).
/// Excess examples beyond the targets are dropped so benchmark composition
/// is stable across machines.
std::vector<LabeledPulse> build_benchmark_pulses(const BenchmarkConfig& config);

/// Converts labeled pulses into an ml::Dataset whose class column follows
/// `scheme` (Tables 2–3). All 22 features are kept as columns.
ml::Dataset make_alm_dataset(const std::vector<LabeledPulse>& pulses,
                             ml::AlmScheme scheme);

}  // namespace drapid
