// RAPID single-pulse peak search — Algorithm 1 of the paper.
//
// Input: the SPEs of one DBSCAN cluster, sorted by trial DM. The search
// divides the SPEs into bins (Equation 1 sets the bin size from the cluster
// size), fits a linear regression of SNR against DM through each bin, and
// classifies each bin's trend as decreasing / flat / increasing against the
// slope threshold M. A state machine over consecutive trends tracks whether
// the walk is climbing a single pulse, has crossed its peak, or is
// descending, and emits one SinglePulse per distinct peak. A cluster can
// contain many pulses (the paper finds 188 in B1853+01's data where the
// older DPG search found one).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "spe/spe.hpp"

namespace drapid {

/// Tunable parameters of Algorithm 1.
struct RapidParams {
  /// w in Equation 1 — governs how quickly the bin size grows with cluster
  /// size. Paper tuning (§5.1.2) selected 0.75.
  double weight = 0.75;
  /// M — minimum |slope| for a regression line to count as increasing or
  /// decreasing. Paper tuning selected 0.5.
  double slope_threshold = 0.5;
  /// When false, uses the fixed bin size from the DPG-era RAPID [10]
  /// (the ablation of Equation 1).
  bool dynamic_bin_size = true;
  /// Fixed bin size used when dynamic_bin_size is false; [10] used 25.
  std::size_t static_bin_size = 25;
};

/// Equation 1: binsize = 1 if n < 12, else floor(w * sqrt(n)).
/// Never returns 0 (a weight small enough to floor to 0 degrades to 1).
std::size_t compute_bin_size(std::size_t n, const RapidParams& params);

/// One identified single pulse: a contiguous index range of the DM-sorted
/// cluster events, with the peak position.
struct SinglePulse {
  std::size_t begin = 0;  ///< first SPE index (inclusive)
  std::size_t end = 0;    ///< one past the last SPE index
  std::size_t peak = 0;   ///< index of the maximum-SNR SPE in [begin, end)

  std::size_t size() const { return end - begin; }
};

/// Runs Algorithm 1 over one cluster's SPEs (must be sorted by DM;
/// behaviour is unspecified otherwise). Returns the identified single
/// pulses in DM order.
///
/// Allocation-free per bin: regressions accumulate incremental sums
/// (RunningFit) and peak positions are tracked during the scan itself, so
/// the only allocation is the growing result vector. This is the per-cluster
/// inner loop of the identification stage — the paper's Figure 4 wall clock
/// is dominated by calls to this function.
std::vector<SinglePulse> rapid_search(std::span<const SinglePulseEvent> events,
                                      const RapidParams& params = {});

/// Work metric for the cost model: SPEs the search scans (every SPE enters
/// exactly one bin regression), plus per-cluster constant overhead.
std::size_t rapid_search_cost(std::size_t cluster_size);

}  // namespace drapid
