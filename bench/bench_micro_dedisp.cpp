// Microbenchmarks for the phase 1–3 substrate: dedispersion, matched-filter
// detection, FFT and folding.
#include <benchmark/benchmark.h>

#include "micro_support.hpp"

#include "dedisp/periodicity.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

Filterbank bench_filterbank(std::size_t channels) {
  FilterbankConfig cfg;
  cfg.num_channels = channels;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 10.0;
  Filterbank fb(cfg);
  Rng rng(1);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 3.0, 20.0);
  return fb;
}

void BM_Dedisperse(benchmark::State& state) {
  const auto fb = bench_filterbank(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedisperse(fb, 40.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fb.num_samples()) *
                          state.range(0));
}
BENCHMARK(BM_Dedisperse)->Arg(32)->Arg(128);

void BM_DetectEvents(benchmark::State& state) {
  const auto fb = bench_filterbank(32);
  const auto series = dedisperse(fb, 40.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect_events(series, 40.0, 2.0, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(series.size()));
}
BENCHMARK(BM_DetectEvents);

void BM_FullSinglePulseSearch(benchmark::State& state) {
  const auto fb = bench_filterbank(32);
  const DmGrid grid({{0.0, 100.0, 2.0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(single_pulse_search(fb, grid, {}));
  }
}
BENCHMARK(BM_FullSinglePulseSearch);

void BM_Fft(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::complex<double>> a(
      static_cast<std::size_t>(state.range(0)));
  for (auto& x : a) x = {rng.normal(), 0.0};
  for (auto _ : state) {
    auto copy = a;
    fft_inplace(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384);

void BM_PeriodicitySearch(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> series(16384);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) * 1e-3;
    series[i] = 2.0 * std::exp(-0.5 * std::pow(
        (std::fmod(t, 0.5) - 0.25) / 0.01, 2.0)) + rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(periodicity_search(series, 1.0));
  }
}
BENCHMARK(BM_PeriodicitySearch);

void BM_Fold(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> series(16384);
  for (auto& v : series) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fold(series, 1.0, 0.5, 64));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(series.size()));
}
BENCHMARK(BM_Fold);

}  // namespace
}  // namespace drapid

DRAPID_MICRO_MAIN("bench_micro_dedisp",
                  "Micro-benchmarks for the dedispersion layer: single-pulse search and periodicity folding.")
