#include "dataflow/ipc/pool.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <stdexcept>
#include <utility>

#include "dataflow/engine.hpp"
#include "dataflow/ipc/wire.hpp"
#include "obs/counters.hpp"

namespace drapid {

namespace {

using ipc::FrameKind;
using ipc::TaskFrame;
using ipc::WireReader;
using ipc::WireWriter;

constexpr std::uint64_t kDieBeforeFlag = 1;   ///< kTaskAssign flags bit
constexpr std::uint64_t kInputInline = 0;     ///< kTaskAssign input modes
constexpr std::uint64_t kInputResident = 1;

std::string permanent_failure_message(const std::string& stage,
                                      std::size_t partition,
                                      std::size_t attempts) {
  return "task failed permanently after " + std::to_string(attempts) +
         " attempts: stage=" + stage +
         " partition=" + std::to_string(partition);
}

/// Writes the whole buffer with blocking write(2); child side only.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Wide-stage segment bundles. A wide kernel returns its routed output as
//   u64 num_targets, then per target: u64 record_count, u64 seg_size, bytes
// where the segment bytes are the target's records encoded back to back
// (no count prefix). Owners assemble a target partition as
//   u64 total_count + concat(segments in source order)
// which is byte-identical to ipc::encode_payload of the same records — the
// exact layout the local backend's placement pass produces.

struct BundleSeg {
  std::uint64_t count = 0;
  const char* data = nullptr;
  std::size_t size = 0;
};

std::vector<BundleSeg> parse_bundle(const std::string& bundle) {
  WireReader r(bundle);
  const std::uint64_t n = r.get_u64();
  std::vector<BundleSeg> segs(static_cast<std::size_t>(n));
  for (auto& seg : segs) {
    seg.count = r.get_u64();
    const std::uint64_t size = r.get_u64();
    seg.data = r.get_bytes(static_cast<std::size_t>(size));
    seg.size = static_cast<std::size_t>(size);
  }
  if (!r.done()) throw ipc::WireError("segment bundle has trailing bytes");
  return segs;
}

// ---------------------------------------------------------------------------
// Child side. Runs in the forked worker only; communicates exclusively over
// its socket. Never returns, never calls exit() — _exit() skips atexit
// handlers and stdio flushes that belong to the parent.

struct ChildStage {
  std::string name;
  bool wide = false;
  PoolKernelFn kernel = nullptr;
  std::string closure;
  std::uint64_t out_set = 0;
  std::size_t num_targets = 0;
  std::size_t nworkers = 1;
  std::size_t max_attempts = 1;
};

struct ChildState {
  int fd = -1;
  std::size_t slot = 0;
  const FaultInjector* faults = nullptr;
  ChildStage stage;
  /// Resident partitions: set id -> partition -> serialized payload.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, std::string>>
      resident;
  /// Staged wide segments: set id -> (target, source) -> (count, bytes).
  /// An ordered map so assembly walks sources in order with one range scan.
  std::unordered_map<
      std::uint64_t,
      std::map<std::pair<std::uint64_t, std::uint64_t>,
               std::pair<std::uint64_t, std::string>>>
      staging;
};

bool child_send(ChildState& st, const TaskFrame& frame) {
  const std::string bytes = ipc::encode_frame(frame);
  return write_all(st.fd, bytes.data(), bytes.size());
}

/// Vectored send for data-bearing frames: header + payload spans + trailer
/// go out through one writev without concatenating the payload first.
bool child_send_parts(ChildState& st, const TaskFrame& frame,
                      const ipc::FrameSpan* spans, std::size_t num_spans) {
  const ipc::FrameParts parts = ipc::encode_frame_parts(frame, spans,
                                                        num_spans);
  std::vector<iovec> iov;
  iov.reserve(num_spans + 2);
  iov.push_back(iovec{const_cast<char*>(parts.header.data()),
                      parts.header.size()});
  for (std::size_t i = 0; i < num_spans; ++i) {
    if (spans[i].size == 0) continue;
    iov.push_back(iovec{const_cast<char*>(spans[i].data), spans[i].size});
  }
  iov.push_back(iovec{const_cast<char*>(parts.trailer.data()),
                      parts.trailer.size()});
  std::size_t idx = 0;
  std::size_t skip = 0;  // bytes of iov[idx] already written
  while (idx < iov.size()) {
    iovec local[64];
    std::size_t n = 0;
    for (std::size_t i = idx; i < iov.size() && n < 64; ++i, ++n) {
      local[n] = iov[i];
      if (i == idx && skip > 0) {
        local[n].iov_base = static_cast<char*>(local[n].iov_base) + skip;
        local[n].iov_len -= skip;
      }
    }
    const ssize_t written = ::writev(st.fd, local, static_cast<int>(n));
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t left = static_cast<std::size_t>(written);
    while (left > 0) {
      const std::size_t head = iov[idx].iov_len - skip;
      if (left >= head) {
        left -= head;
        skip = 0;
        idx += 1;
      } else {
        skip += left;
        left = 0;
      }
    }
  }
  return true;
}

void child_handle_stage_begin(ChildState& st, const TaskFrame& frame) {
  WireReader r(frame.payload);
  ChildStage s;
  s.wide = r.get_u64() != 0;
  s.kernel = reinterpret_cast<PoolKernelFn>(
      static_cast<std::uintptr_t>(r.get_u64()));
  s.out_set = r.get_u64();
  s.num_targets = static_cast<std::size_t>(r.get_u64());
  s.nworkers = static_cast<std::size_t>(r.get_u64());
  s.max_attempts = static_cast<std::size_t>(r.get_u64());
  ipc::decode_value(r, s.name);
  ipc::decode_value(r, s.closure);
  st.stage = std::move(s);
}

/// Runs one assigned task: the PR 7 attempt loop (same fault-draw sites,
/// same attempt/retry_cost accounting), then the kernel instead of the body.
void child_handle_assign(ChildState& st, const TaskFrame& frame) {
  WireReader r(frame.payload);
  const std::size_t p = static_cast<std::size_t>(frame.partition);
  const std::size_t attempt_base = static_cast<std::size_t>(r.get_u64());
  const std::uint64_t flags = r.get_u64();
  const std::uint64_t ninputs = r.get_u64();
  if (flags & kDieBeforeFlag) {
    // Planned death: vanish without a frame, mid-"write" as far as the
    // coordinator can tell. SIGKILL is unmaskable, like the real thing.
    ::kill(::getpid(), SIGKILL);
  }
  std::vector<std::string> owned;      // inline payload copies
  std::vector<const std::string*> inputs;
  owned.reserve(static_cast<std::size_t>(ninputs));
  inputs.reserve(static_cast<std::size_t>(ninputs));
  for (std::uint64_t i = 0; i < ninputs; ++i) {
    const std::uint64_t mode = r.get_u64();
    if (mode == kInputInline) {
      std::string bytes;
      ipc::decode_value(r, bytes);
      owned.push_back(std::move(bytes));
      inputs.push_back(&owned.back());
    } else {
      const std::uint64_t set = r.get_u64();
      const std::uint64_t part = r.get_u64();
      inputs.push_back(&st.resident.at(set).at(part));
    }
  }

  ChildStage& stage = st.stage;
  TaskFrame reply;
  reply.partition = p;
  TaskMetrics task;
  task.partition = p;
  std::string out;
  try {
    PoolTaskCtx ctx;
    ctx.partition = p;
    ctx.closure = &stage.closure;
    ctx.inputs = inputs;
    ctx.metrics = &task;
    ctx.num_targets = stage.num_targets;
    for (std::size_t attempt = attempt_base;; ++attempt) {
      task.attempts = attempt + 1;
      if (st.faults->fail_task(stage.name, p, attempt)) {
        if (attempt + 1 >= stage.max_attempts) {
          throw TaskFailure(
              permanent_failure_message(stage.name, p, attempt + 1));
        }
        continue;  // the reattempt backoff is modeled, not slept
      }
      out = stage.kernel(ctx);
      if (attempt > 0) {
        task.retry_cost += attempt * task.compute_cost;
      }
      break;
    }
  } catch (const TaskFailure& failure) {
    reply.kind = FrameKind::kError;
    reply.error_kind = ipc::WireErrorKind::kTaskFailure;
    reply.metrics = task;
    reply.payload = failure.what();
    child_send(st, reply);
    ::_exit(0);
  } catch (const std::exception& error) {
    reply.kind = FrameKind::kError;
    reply.error_kind = ipc::WireErrorKind::kRuntime;
    reply.metrics = task;
    reply.payload = error.what();
    child_send(st, reply);
    ::_exit(0);
  }

  if (!stage.wide) {
    // Narrow: the output partition stays here. The result frame carries the
    // metrics plus the resident size (for the coordinator's gauges) — not
    // the data.
    WireWriter w;
    w.put_u64(out.size());
    reply.kind = FrameKind::kResult;
    reply.metrics = task;
    reply.payload = w.take();
    st.resident[stage.out_set][p] = std::move(out);
    if (!child_send(st, reply)) ::_exit(1);
    return;
  }

  // Wide: split the bundle. Own targets go straight to staging; the rest
  // are pushed for the parent to relay to their owners.
  const std::vector<BundleSeg> segs = parse_bundle(out);
  for (std::size_t t = 0; t < segs.size(); ++t) {
    const BundleSeg& seg = segs[t];
    if (t % stage.nworkers == st.slot) {
      st.staging[stage.out_set][{t, p}] = {
          seg.count, std::string(seg.data, seg.size)};
      continue;
    }
    if (seg.count == 0 && seg.size == 0) continue;  // nothing to ship
    TaskFrame push;
    push.kind = FrameKind::kShufflePush;
    push.partition = p;
    WireWriter meta;
    meta.put_u64(stage.out_set);
    meta.put_u64(t);
    meta.put_u64(p);
    meta.put_u64(seg.count);
    meta.put_u64(seg.size);
    const ipc::FrameSpan spans[2] = {
        {meta.buffer().data(), meta.buffer().size()}, {seg.data, seg.size}};
    if (!child_send_parts(st, push, spans, 2)) ::_exit(1);
  }
  reply.kind = FrameKind::kResult;
  reply.metrics = task;
  if (!child_send(st, reply)) ::_exit(1);
}

void child_handle_push(ChildState& st, const TaskFrame& frame) {
  WireReader r(frame.payload);
  const std::uint64_t set = r.get_u64();
  const std::uint64_t target = r.get_u64();
  const std::uint64_t source = r.get_u64();
  const std::uint64_t count = r.get_u64();
  const std::uint64_t size = r.get_u64();
  const char* data = r.get_bytes(static_cast<std::size_t>(size));
  // Overwrite, not append: a re-relayed segment from a retried source must
  // land idempotently (kernels are deterministic, so the bytes match).
  st.staging[set][{target, source}] = {
      count, std::string(data, static_cast<std::size_t>(size))};
}

void child_handle_stage_end(ChildState& st, const TaskFrame& frame) {
  WireReader r(frame.payload);
  const std::uint64_t set = r.get_u64();
  const bool wide = r.get_u64() != 0;
  TaskFrame ack;
  ack.kind = FrameKind::kAck;
  WireWriter w;
  w.put_u64(set);
  if (!wide) {
    w.put_u64(0);
    ack.payload = w.take();
    if (!child_send(st, ack)) ::_exit(1);
    return;
  }
  const std::uint64_t nassemble = r.get_u64();
  w.put_u64(nassemble);
  auto& staged = st.staging[set];
  for (std::uint64_t i = 0; i < nassemble; ++i) {
    const std::uint64_t t = r.get_u64();
    std::uint64_t total = 0;
    std::string assembled(sizeof(std::uint64_t), '\0');
    std::uint64_t records = 0;
    const auto lo = staged.lower_bound({t, 0});
    const auto hi = staged.lower_bound({t + 1, 0});
    for (auto it = lo; it != hi; ++it) {
      total += it->second.first;
      assembled.append(it->second.second);
    }
    staged.erase(lo, hi);
    std::memcpy(assembled.data(), &total, sizeof(total));
    records = total;
    w.put_u64(t);
    w.put_u64(assembled.size());
    w.put_u64(records);
    st.resident[set][t] = std::move(assembled);
  }
  ack.payload = w.take();
  if (!child_send(st, ack)) ::_exit(1);
}

void child_handle_fetch(ChildState& st, const TaskFrame& frame) {
  WireReader r(frame.payload);
  const std::uint64_t set = r.get_u64();
  const std::uint64_t part = r.get_u64();
  const auto set_it = st.resident.find(set);
  const std::string* bytes = nullptr;
  if (set_it != st.resident.end()) {
    const auto part_it = set_it->second.find(part);
    if (part_it != set_it->second.end()) bytes = &part_it->second;
  }
  if (bytes == nullptr) {
    TaskFrame err;
    err.kind = FrameKind::kError;
    err.error_kind = ipc::WireErrorKind::kRuntime;
    err.payload = "pool worker: fetch of non-resident partition set=" +
                  std::to_string(set) + " p=" + std::to_string(part);
    child_send(st, err);
    ::_exit(1);
  }
  TaskFrame data;
  data.kind = FrameKind::kData;
  data.partition = part;
  WireWriter meta;
  meta.put_u64(set);
  meta.put_u64(part);
  meta.put_u64(bytes->size());
  const ipc::FrameSpan spans[2] = {
      {meta.buffer().data(), meta.buffer().size()},
      {bytes->data(), bytes->size()}};
  if (!child_send_parts(st, data, spans, 2)) ::_exit(1);
}

[[noreturn]] void child_main(int fd, std::size_t slot,
                             const FaultInjector& faults) {
  ::signal(SIGPIPE, SIG_IGN);
  ChildState st;
  st.fd = fd;
  st.slot = slot;
  st.faults = &faults;
  std::string buffer;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(1);
    }
    if (n == 0) ::_exit(0);  // parent vanished
    buffer.append(buf, static_cast<std::size_t>(n));
    std::size_t offset = 0;
    while (true) {
      TaskFrame frame;
      std::size_t consumed = 0;
      const auto status = ipc::try_decode_frame(
          buffer.data() + offset, buffer.size() - offset, frame, consumed);
      if (status == ipc::DecodeStatus::kIncomplete) break;
      if (status == ipc::DecodeStatus::kCorrupt) ::_exit(1);
      offset += consumed;
      try {
        switch (frame.kind) {
          case FrameKind::kStageBegin:
            child_handle_stage_begin(st, frame);
            break;
          case FrameKind::kTaskAssign:
            child_handle_assign(st, frame);
            break;
          case FrameKind::kShufflePush:
            child_handle_push(st, frame);
            break;
          case FrameKind::kStageEnd:
            child_handle_stage_end(st, frame);
            break;
          case FrameKind::kFetch:
            child_handle_fetch(st, frame);
            break;
          case FrameKind::kRelease: {
            WireReader r(frame.payload);
            const std::uint64_t set = r.get_u64();
            st.resident.erase(set);
            st.staging.erase(set);
            break;
          }
          case FrameKind::kShutdown:
            ::_exit(0);
          default:
            ::_exit(1);  // protocol violation
        }
      } catch (const std::exception& error) {
        TaskFrame err;
        err.kind = FrameKind::kError;
        err.error_kind = ipc::WireErrorKind::kRuntime;
        err.payload = std::string("pool worker: ") + error.what();
        child_send(st, err);
        ::_exit(1);
      }
    }
    buffer.erase(0, offset);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PoolSet handle + engine-free accessors (declared in executor.hpp).

PoolSet::~PoolSet() {
  if (auto locked = core.lock()) locked->release(id);
}

std::string pool_fetch(const std::shared_ptr<PoolSet>& set,
                       std::size_t partition) {
  auto core = set ? set->core.lock() : nullptr;
  if (!core) {
    throw std::runtime_error(
        "pool_fetch: resident set outlived its engine's pool registry");
  }
  return core->fetch(set->id, partition);
}

std::size_t pool_set_bytes(const std::shared_ptr<PoolSet>& set) {
  auto core = set ? set->core.lock() : nullptr;
  return core ? core->set_bytes(set->id) : 0;
}

std::size_t pool_set_records(const std::shared_ptr<PoolSet>& set,
                             std::size_t partition) {
  auto core = set ? set->core.lock() : nullptr;
  return core ? core->set_records(set->id, partition) : 0;
}

// ---------------------------------------------------------------------------
// PoolRegistryCore.

std::string PoolRegistryCore::fetch(std::uint64_t set, std::size_t partition) {
  auto it = sets_.find(set);
  if (it == sets_.end()) {
    throw std::runtime_error("pool registry: unknown set " +
                             std::to_string(set));
  }
  pooldetail::PartState& part = it->second.parts.at(partition);
  if (!part.parent_bytes.empty()) return part.parent_bytes;
  if (part.owner >= 0 && pool_ != nullptr) {
    std::string bytes;
    if (pool_->fetch_from_worker(static_cast<std::size_t>(part.owner), set,
                                 partition, bytes)) {
      // Cache the parent copy: recovery paths (wide rebuilds especially)
      // re-read the same source partitions many times.
      part.parent_bytes = std::move(bytes);
      return part.parent_bytes;
    }
    // The holder died mid-fetch; its parts were marked dead. Fall through.
  }
  return rebuild(set, partition);
}

std::string PoolRegistryCore::rebuild(std::uint64_t set,
                                      std::size_t partition) {
  pooldetail::SetState& s = sets_.at(set);
  pooldetail::PartState& part = s.parts.at(partition);
  obs::global_counters().add("engine.pool_rebuilds");
  const auto input_bytes = [&](const pooldetail::StoredInput& in) {
    return in.set != 0 ? fetch(in.set, in.partition) : in.bytes;
  };
  TaskMetrics scratch;  // lineage rebuilds charge no attempts, draw no faults
  std::string built;
  if (s.kind == PoolStagePlan::Kind::kNarrow) {
    const auto& refs = s.task_inputs.at(partition);
    std::vector<std::string> held;
    held.reserve(refs.size());
    for (const auto& in : refs) held.push_back(input_bytes(in));
    PoolTaskCtx ctx;
    ctx.partition = partition;
    ctx.closure = &s.closure;
    for (const auto& h : held) ctx.inputs.push_back(&h);
    ctx.metrics = &scratch;
    built = s.kernel(ctx);
  } else {
    // Wide target: re-run every source's routing kernel and take segment
    // `partition` from each bundle, concatenated in source order — the same
    // layout the owning worker would have assembled.
    std::uint64_t total = 0;
    built.assign(sizeof(std::uint64_t), '\0');
    for (std::size_t src = 0; src < s.task_inputs.size(); ++src) {
      const auto& refs = s.task_inputs.at(src);
      const std::string bytes = input_bytes(refs.at(0));
      PoolTaskCtx ctx;
      ctx.partition = src;
      ctx.closure = &s.closure;
      ctx.inputs.push_back(&bytes);
      ctx.metrics = &scratch;
      ctx.num_targets = s.parts.size();
      const std::string bundle = s.kernel(ctx);
      const std::vector<BundleSeg> segs = parse_bundle(bundle);
      const BundleSeg& seg = segs.at(partition);
      total += seg.count;
      built.append(seg.data, seg.size);
    }
    std::memcpy(built.data(), &total, sizeof(total));
    part.records = static_cast<std::size_t>(total);
  }
  part.parent_bytes = std::move(built);
  part.bytes = part.parent_bytes.size();
  return part.parent_bytes;
}

std::size_t PoolRegistryCore::set_bytes(std::uint64_t set) const {
  const auto it = sets_.find(set);
  if (it == sets_.end()) return 0;
  std::size_t total = 0;
  for (const auto& part : it->second.parts) total += part.bytes;
  return total;
}

std::size_t PoolRegistryCore::set_records(std::uint64_t set,
                                          std::size_t partition) const {
  const auto it = sets_.find(set);
  if (it == sets_.end()) return 0;
  return it->second.parts.at(partition).records;
}

void PoolRegistryCore::release(std::uint64_t set) {
  if (sets_.erase(set) == 0) return;
  if (pool_ != nullptr) pool_->release_on_workers(set);
}

// ---------------------------------------------------------------------------
// WorkerPool: the parent (coordinator) side.

/// Book-keeping of the one pooled stage currently in flight.
struct WorkerPool::StageCtx {
  struct Task {
    std::size_t partition = 0;
    /// Attempts already charged by deaths of this task's worker slot; the
    /// child's retry loop starts here (PR 7 accounting, verbatim).
    std::size_t attempt_base = 0;
  };

  StageCtx(StageMetrics& s, PoolStagePlan& p) : stage(s), plan(p) {}

  StageMetrics& stage;
  PoolStagePlan& plan;
  bool wide = false;
  std::uint64_t out_set = 0;
  pooldetail::SetState* out_state = nullptr;
  std::size_t ntasks = 0;
  std::size_t nparts = 0;
  std::size_t max_attempts = 1;
  std::size_t completed = 0;
  std::vector<std::vector<PoolInputRef>> inputs;  ///< per task, resolved once
  std::vector<std::vector<Task>> assigned;        ///< per slot, unfinished
  std::vector<std::size_t> death_attempts;        ///< per task
  std::vector<std::size_t> stage_deaths;          ///< per slot, this stage
  std::vector<std::size_t> task_slot;             ///< per task
  /// Slots respawned since the last drain; their pending tasks need
  /// re-dispatch. A flag per slot, not a queue: the pending list is the
  /// authority, and a second death before the drain must not double-send.
  std::vector<bool> need_reassign;
  bool ending = false;        ///< kStageEnd sent, awaiting acks
  std::vector<bool> acked;    ///< per slot (barrier bookkeeping)
};

WorkerPool::WorkerPool(Engine& engine, std::size_t workers)
    : engine_(engine),
      nworkers_(std::max<std::size_t>(1, workers)),
      core_(std::make_shared<PoolRegistryCore>()) {
  core_->pool_ = this;
  workers_.resize(nworkers_);
  for (std::size_t i = 0; i < nworkers_; ++i) workers_[i].slot = i;
}

WorkerPool::~WorkerPool() {
  shutdown();
  core_->pool_ = nullptr;
}

void WorkerPool::spawn(PoolWorker& w) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error(std::string("socketpair failed: ") +
                             std::strerror(errno));
  }
  // Everything the child must NOT hold open: the other live workers'
  // parent-side sockets (an inherited duplicate would mask a sibling's
  // EOF) and its own parent side.
  std::vector<int> close_fds;
  for (const auto& other : workers_) {
    if (other.alive && other.fd >= 0) close_fds.push_back(other.fd);
  }
  close_fds.push_back(fds[0]);
  if (w.ever_spawned) w.incarnation += 1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    for (int fd : close_fds) ::close(fd);
    child_main(fds[1], w.slot, engine_.faults_);
  }
  ::close(fds[1]);
  // Parent side is nonblocking both ways: the pump must never block in a
  // write while a child is blocked writing to us (classic pipe deadlock),
  // and a stale poll event after a mid-loop respawn must read EAGAIN, not
  // hang.
  const int fl = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, fl | O_NONBLOCK);
  w.pid = pid;
  w.fd = fds[0];
  w.alive = true;
  w.ever_spawned = true;
  w.inbuf.clear();
  w.outbuf.clear();
  w.outpos = 0;
  engine_.workers_forked_counter_.add();
}

void WorkerPool::ensure_spawned(StageMetrics* stage) {
  std::size_t reused = 0;
  for (const auto& w : workers_) reused += w.alive ? 1 : 0;
  for (auto& w : workers_) {
    if (w.alive) continue;
    spawn(w);
    if (stage != nullptr) stage->workers_used += 1;
  }
  if (stage != nullptr) stage->pool_reuses += reused;
  spawned_ = true;
  update_gauge();
}

void WorkerPool::retire(PoolWorker& w) {
  if (w.fd >= 0) ::close(w.fd);
  w.fd = -1;
  w.alive = false;
  w.inbuf.clear();
  w.outbuf.clear();
  w.outpos = 0;
  if (w.pid > 0) {
    int status = 0;
    ::waitpid(w.pid, &status, 0);
  }
}

void WorkerPool::handle_death(PoolWorker& w) {
  const std::size_t slot = w.slot;
  const std::size_t incarnation = w.incarnation;
  retire(w);
  update_gauge();
  // Everything resident on that worker is gone; lineage rebuild covers it.
  for (auto& entry : core_->sets_) {
    for (auto& part : entry.second.parts) {
      if (part.owner == static_cast<int>(slot)) {
        part.owner = pooldetail::PartState::kNone;
      }
    }
  }
  for (auto* f : fetches_) {
    if (f->slot == slot) f->failed = true;
  }
  engine_.worker_deaths_counter_.add();
  if (engine_.tracer_.enabled()) {
    obs::Json args = obs::Json::object();
    args.set("stage", ctx_ != nullptr ? ctx_->stage.name : std::string());
    args.set("worker", static_cast<std::int64_t>(slot));
    args.set("incarnation", static_cast<std::int64_t>(incarnation));
    args.set("tasks_lost",
             static_cast<std::int64_t>(
                 ctx_ != nullptr ? ctx_->assigned[slot].size() : 0));
    engine_.tracer_.instant("worker.death", std::move(args), "fault");
  }
  if (ctx_ == nullptr) return;  // death between stages; respawn lazily
  StageCtx& ctx = *ctx_;
  ctx.stage.worker_deaths += 1;
  ctx.stage_deaths[slot] += 1;
  if (ctx.ending) {
    // All tasks were absorbed before the barrier; nothing to re-run. Its
    // owned wide targets just lost their assembler — lineage covers them.
    ctx.acked[slot] = true;
    return;
  }
  // Every unfinished task is charged one attempt — the same price as an
  // injected task kill under the local backend.
  auto& pending = ctx.assigned[slot];
  for (auto& t : pending) {
    t.attempt_base += 1;
    ctx.death_attempts[t.partition] += 1;
    engine_.retries_counter_.add();
    if (engine_.tracer_.enabled()) {
      obs::Json args = obs::Json::object();
      args.set("stage", ctx.stage.name);
      args.set("partition", static_cast<std::int64_t>(t.partition));
      args.set("attempt", static_cast<std::int64_t>(t.attempt_base - 1));
      engine_.tracer_.instant("task.retry", std::move(args), "fault");
    }
    if (t.attempt_base >= ctx.max_attempts) {
      engine_.failures_counter_.add();
      throw TaskFailure(permanent_failure_message(ctx.stage.name, t.partition,
                                                  t.attempt_base));
    }
  }
  if (pending.empty()) return;  // nothing to redo; respawn lazily
  spawn(w);
  ctx.stage.workers_used += 1;
  ctx.stage.worker_respawns += 1;
  update_gauge();
  send_stage_begin(w);
  // Reassignment is deferred: we may be deep inside a pump dispatch here,
  // and re-dispatch needs input re-resolution (possibly fetches, i.e. more
  // pumping), which must only happen from the top-level wait loop.
  ctx.need_reassign[slot] = true;
}

void WorkerPool::count_ipc(std::size_t bytes) {
  engine_.ipc_bytes_counter_.add(static_cast<std::int64_t>(bytes));
  if (ctx_ != nullptr) ctx_->stage.ipc_bytes += bytes;
}

void WorkerPool::enqueue(PoolWorker& w, std::string bytes) {
  if (!w.alive) return;  // death recovery re-dispatches separately
  count_ipc(bytes.size());
  if (w.outbuf.empty()) {
    w.outbuf = std::move(bytes);
    w.outpos = 0;
  } else {
    w.outbuf.append(bytes);
  }
  flush(w);
}

void WorkerPool::flush(PoolWorker& w) {
  while (w.alive && w.outpos < w.outbuf.size()) {
    const ssize_t n = ::send(w.fd, w.outbuf.data() + w.outpos,
                             w.outbuf.size() - w.outpos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      handle_death(w);
      return;
    }
    w.outpos += static_cast<std::size_t>(n);
  }
  if (w.alive && w.outpos == w.outbuf.size()) {
    w.outbuf.clear();
    w.outpos = 0;
  }
}

void WorkerPool::pump() {
  std::vector<pollfd> fds;
  std::vector<std::size_t> slots;
  for (const auto& w : workers_) {
    if (!w.alive) continue;
    short events = POLLIN;
    if (w.outpos < w.outbuf.size()) events |= POLLOUT;
    fds.push_back(pollfd{w.fd, events, 0});
    slots.push_back(w.slot);
  }
  if (fds.empty()) {
    throw std::runtime_error(
        "worker pool: all workers dead with work outstanding");
  }
  const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
  if (rc < 0) {
    if (errno == EINTR) return;
    throw std::runtime_error(std::string("poll failed: ") +
                             std::strerror(errno));
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    PoolWorker& w = workers_[slots[i]];
    // A dispatch earlier in this loop may have retired (and respawned) this
    // slot; a reused fd number then reads EAGAIN harmlessly.
    if (!w.alive || w.fd != fds[i].fd) continue;
    if (fds[i].revents & POLLOUT) flush(w);
    if (!w.alive || w.fd != fds[i].fd) continue;
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) read_and_dispatch(w);
  }
}

void WorkerPool::read_and_dispatch(PoolWorker& w) {
  char buf[64 * 1024];
  const ssize_t n = ::read(w.fd, buf, sizeof(buf));
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    handle_death(w);
    return;
  }
  if (n == 0) {
    // EOF. Anything left in the buffer is a frame the worker died
    // mid-write; handle_death treats the remnant like the SIGKILL it
    // probably was.
    handle_death(w);
    return;
  }
  w.inbuf.append(buf, static_cast<std::size_t>(n));
  std::size_t offset = 0;
  bool corrupt = false;
  while (true) {
    ipc::TaskFrame frame;
    std::size_t consumed = 0;
    const auto status = ipc::try_decode_frame(
        w.inbuf.data() + offset, w.inbuf.size() - offset, frame, consumed);
    if (status == ipc::DecodeStatus::kOk) {
      dispatch_frame(w, frame, w.inbuf.data() + offset, consumed);
      offset += consumed;
      continue;
    }
    if (status == ipc::DecodeStatus::kIncomplete) break;
    corrupt = true;
    break;
  }
  w.inbuf.erase(0, offset);
  if (corrupt) {
    // A worker emitting garbage is as dead as one that vanished: kill it
    // for real, then recover through the same path.
    ::kill(w.pid, SIGKILL);
    handle_death(w);
  }
}

void WorkerPool::dispatch_frame(PoolWorker& w, const ipc::TaskFrame& frame,
                                const char* raw, std::size_t consumed) {
  count_ipc(consumed);
  switch (frame.kind) {
    case FrameKind::kError:
      if (frame.error_kind == ipc::WireErrorKind::kTaskFailure) {
        engine_.failures_counter_.add();
        throw TaskFailure(frame.payload);
      }
      throw std::runtime_error(frame.payload);

    case FrameKind::kResult: {
      if (ctx_ == nullptr) {
        throw std::runtime_error("worker pool: result frame outside a stage");
      }
      StageCtx& ctx = *ctx_;
      const std::size_t p = static_cast<std::size_t>(frame.partition);
      auto& pending = ctx.assigned[w.slot];
      const auto it = std::find_if(
          pending.begin(), pending.end(),
          [&](const StageCtx::Task& t) { return t.partition == p; });
      if (p >= ctx.ntasks || it == pending.end()) {
        throw std::runtime_error("worker pool: worker " +
                                 std::to_string(w.slot) +
                                 " returned unassigned partition " +
                                 std::to_string(p));
      }
      ctx.stage.tasks[p] = frame.metrics;
      ctx.stage.tasks[p].partition = p;
      engine_.tasks_counter_.add();
      // attempts = 1 clean run + death-charged attempts + injected kills
      // the child drew; credit the injected share to the retry counter
      // (deaths were credited when they happened).
      const std::size_t base = 1 + ctx.death_attempts[p];
      if (frame.metrics.attempts > base) {
        engine_.retries_counter_.add(
            static_cast<std::int64_t>(frame.metrics.attempts - base));
      }
      if (!ctx.wide) {
        ipc::WireReader r(frame.payload);
        pooldetail::PartState& part = ctx.out_state->parts[p];
        part.owner = static_cast<int>(w.slot);
        part.bytes = static_cast<std::size_t>(r.get_u64());
        part.records = frame.metrics.records_out;
      }
      pending.erase(it);
      ctx.completed += 1;
      break;
    }

    case FrameKind::kShufflePush: {
      if (ctx_ == nullptr || !ctx_->wide) {
        throw std::runtime_error("worker pool: stray shuffle push");
      }
      ipc::WireReader r(frame.payload);
      r.get_u64();  // set (the in-flight stage's out set)
      const std::uint64_t target = r.get_u64();
      const std::size_t owner = static_cast<std::size_t>(target) % nworkers_;
      // Relay the received frame bytes verbatim — no re-encode. Slots that
      // already died this stage get nothing: their targets lost earlier
      // segments with the old incarnation and will be parent-rebuilt.
      if (ctx_->stage_deaths[owner] == 0) {
        enqueue(workers_[owner], std::string(raw, consumed));
      }
      break;
    }

    case FrameKind::kAck: {
      if (ctx_ == nullptr || !ctx_->ending) {
        throw std::runtime_error("worker pool: stray stage-end ack");
      }
      StageCtx& ctx = *ctx_;
      ipc::WireReader r(frame.payload);
      r.get_u64();  // set
      const std::uint64_t n = r.get_u64();
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t t = r.get_u64();
        pooldetail::PartState& part = ctx.out_state->parts.at(
            static_cast<std::size_t>(t));
        part.owner = static_cast<int>(w.slot);
        part.bytes = static_cast<std::size_t>(r.get_u64());
        part.records = static_cast<std::size_t>(r.get_u64());
      }
      ctx.acked[w.slot] = true;
      break;
    }

    case FrameKind::kData: {
      ipc::WireReader r(frame.payload);
      const std::uint64_t set = r.get_u64();
      const std::uint64_t part = r.get_u64();
      const std::uint64_t size = r.get_u64();
      const char* data = r.get_bytes(static_cast<std::size_t>(size));
      for (auto* f : fetches_) {
        if (!f->done && !f->failed && f->set == set &&
            f->partition == static_cast<std::size_t>(part)) {
          f->bytes.assign(data, static_cast<std::size_t>(size));
          f->done = true;
          break;
        }
      }
      break;
    }

    default:
      throw std::runtime_error("worker pool: unexpected frame kind " +
                               std::to_string(static_cast<std::uint64_t>(
                                   frame.kind)) +
                               " from worker " + std::to_string(w.slot));
  }
}

bool WorkerPool::fetch_from_worker(std::size_t slot, std::uint64_t set,
                                   std::size_t partition, std::string& out) {
  PoolWorker& w = workers_[slot];
  if (!w.alive) return false;
  Fetch f;
  f.set = set;
  f.partition = partition;
  f.slot = slot;
  fetches_.push_back(&f);
  ipc::TaskFrame req;
  req.kind = FrameKind::kFetch;
  req.partition = partition;
  WireWriter pw;
  pw.put_u64(set);
  pw.put_u64(partition);
  req.payload = pw.take();
  enqueue(w, ipc::encode_frame(req));
  try {
    while (!f.done && !f.failed) pump();
  } catch (...) {
    fetches_.erase(std::find(fetches_.begin(), fetches_.end(), &f));
    throw;
  }
  fetches_.erase(std::find(fetches_.begin(), fetches_.end(), &f));
  if (f.failed) return false;
  out = std::move(f.bytes);
  return true;
}

void WorkerPool::send_stage_begin(PoolWorker& w) {
  StageCtx& ctx = *ctx_;
  ipc::TaskFrame frame;
  frame.kind = FrameKind::kStageBegin;
  WireWriter pw;
  pw.put_u64(ctx.wide ? 1 : 0);
  pw.put_u64(static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(ctx.plan.kernel)));
  pw.put_u64(ctx.out_set);
  pw.put_u64(ctx.plan.num_targets);
  pw.put_u64(nworkers_);
  pw.put_u64(ctx.max_attempts);
  ipc::encode_value(pw, ctx.stage.name);
  ipc::encode_value(pw, ctx.plan.closure);
  frame.payload = pw.take();
  enqueue(w, ipc::encode_frame(frame));
}

void WorkerPool::send_assign(PoolWorker& w, std::size_t task,
                             std::size_t attempt_base, bool die_before) {
  StageCtx& ctx = *ctx_;
  // Resolve each declared input against current residency: a partition
  // already resident on the assignee rides as a (set, partition) marker;
  // everything else ships inline — parent cache, chain-head bytes, or a
  // lineage rebuild if the holder died.
  const auto& refs = ctx.inputs[task];
  std::vector<std::string> pieces;
  std::vector<ipc::FrameSpan> spans;
  std::vector<const std::string*> payloads;  // parallel to spans
  pieces.reserve(refs.size() + 1);
  std::vector<std::string> fetched;
  fetched.reserve(refs.size());
  {
    WireWriter pw;
    pw.put_u64(attempt_base);
    pw.put_u64(die_before ? kDieBeforeFlag : 0);
    pw.put_u64(refs.size());
    pieces.push_back(pw.take());
  }
  for (const auto& ref : refs) {
    const std::string* inline_bytes = nullptr;
    if (ref.set) {
      const pooldetail::PartState& part =
          core_->sets_.at(ref.set->id).parts.at(ref.partition);
      if (part.owner == static_cast<int>(w.slot) && w.alive) {
        WireWriter pw;
        pw.put_u64(kInputResident);
        pw.put_u64(ref.set->id);
        pw.put_u64(ref.partition);
        pieces.push_back(pw.take());
        continue;
      }
      // May pump (fetch from another worker) and even observe this very
      // worker dying; enqueue below then drops the frame and the death
      // path re-dispatches the task with a bumped attempt_base.
      fetched.push_back(core_->fetch(ref.set->id, ref.partition));
      inline_bytes = &fetched.back();
    } else {
      inline_bytes = &ref.inline_bytes;
    }
    WireWriter pw;
    pw.put_u64(kInputInline);
    pw.put_u64(inline_bytes->size());
    pieces.push_back(pw.take());
    payloads.push_back(inline_bytes);
  }
  // Interleave: pieces[0], then per input its mode piece (+ payload span for
  // inline ones). Spans reference `pieces`/`fetched`/plan-held strings, all
  // alive until the enqueue below.
  std::size_t piece_idx = 0;
  std::size_t payload_idx = 0;
  spans.push_back({pieces[piece_idx].data(), pieces[piece_idx].size()});
  piece_idx += 1;
  for (const auto& ref : refs) {
    spans.push_back({pieces[piece_idx].data(), pieces[piece_idx].size()});
    const bool resident =
        ref.set &&
        pieces[piece_idx].size() == 3 * sizeof(std::uint64_t);
    piece_idx += 1;
    if (!resident) {
      const std::string* bytes = payloads[payload_idx++];
      spans.push_back({bytes->data(), bytes->size()});
    }
  }
  ipc::TaskFrame frame;
  frame.kind = FrameKind::kTaskAssign;
  frame.partition = task;
  const ipc::FrameParts parts =
      ipc::encode_frame_parts(frame, spans.data(), spans.size());
  std::size_t total = parts.header.size() + parts.trailer.size();
  for (const auto& s : spans) total += s.size;
  std::string bytes;
  bytes.reserve(total);
  bytes.append(parts.header);
  for (const auto& s : spans) bytes.append(s.data, s.size);
  bytes.append(parts.trailer);
  enqueue(w, std::move(bytes));
}

void WorkerPool::send_stage_end(PoolWorker& w) {
  StageCtx& ctx = *ctx_;
  ipc::TaskFrame frame;
  frame.kind = FrameKind::kStageEnd;
  WireWriter pw;
  pw.put_u64(ctx.out_set);
  pw.put_u64(ctx.wide ? 1 : 0);
  if (ctx.wide) {
    // Owned targets to assemble — but only for a slot whose incarnation
    // survived the whole stage; a replacement is missing segments relayed
    // to its predecessor, so its targets fall to the parent rebuild path.
    std::vector<std::uint64_t> targets;
    if (ctx.stage_deaths[w.slot] == 0) {
      for (std::size_t t = w.slot; t < ctx.nparts; t += nworkers_) {
        targets.push_back(t);
      }
    }
    pw.put_u64(targets.size());
    for (const std::uint64_t t : targets) pw.put_u64(t);
  }
  frame.payload = pw.take();
  enqueue(w, ipc::encode_frame(frame));
}

void WorkerPool::drain_reassign() {
  StageCtx& ctx = *ctx_;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t slot = 0; slot < nworkers_; ++slot) {
      if (!ctx.need_reassign[slot]) continue;
      ctx.need_reassign[slot] = false;
      progress = true;
      PoolWorker& w = workers_[slot];
      if (!w.alive) continue;  // died again; its next respawn re-flags
      const std::size_t deaths = ctx.stage_deaths[slot];
      const std::vector<StageCtx::Task> snapshot = ctx.assigned[slot];
      for (const auto& t : snapshot) {
        // A death during one of these sends re-flags the slot; stop so the
        // next round re-dispatches everything to the new incarnation once.
        if (ctx.stage_deaths[slot] != deaths) break;
        send_assign(w, t.partition, t.attempt_base, false);
      }
    }
  }
}

void WorkerPool::run_pooled_stage(StageRun run) {
  StageMetrics& stage = run.stage;
  PoolStagePlan& plan = *run.plan;
  ensure_spawned(&stage);

  StageCtx ctx(stage, plan);
  ctx.wide = plan.kind == PoolStagePlan::Kind::kWide;
  ctx.ntasks = stage.tasks.size();
  ctx.nparts = ctx.wide ? plan.num_targets : ctx.ntasks;
  ctx.max_attempts =
      std::max<std::size_t>(1, engine_.config_.max_task_attempts);
  ctx.inputs.resize(ctx.ntasks);
  ctx.assigned.resize(nworkers_);
  ctx.death_attempts.assign(ctx.ntasks, 0);
  ctx.stage_deaths.assign(nworkers_, 0);
  ctx.task_slot.assign(ctx.ntasks, 0);
  ctx.need_reassign.assign(nworkers_, false);
  ctx.acked.assign(nworkers_, false);

  // Register the output set up front: lineage (kernel + closure + input
  // refs) is recorded before anything runs, so recovery never depends on
  // the stage having finished.
  ctx.out_set = core_->next_id_++;
  pooldetail::SetState& out = core_->sets_[ctx.out_set];
  out.kind = plan.kind;
  out.kernel = plan.kernel;
  out.closure = plan.closure;
  out.num_targets = plan.num_targets;
  out.task_inputs.resize(ctx.ntasks);
  out.parts.resize(ctx.nparts);
  ctx.out_state = &out;

  // Resolve inputs once, record lineage, and place each task: on the worker
  // already holding its first resident input (zero-copy chain / co-located
  // join), round-robin otherwise.
  std::vector<std::shared_ptr<PoolSet>> upstream;
  for (std::size_t p = 0; p < ctx.ntasks; ++p) {
    ctx.inputs[p] = plan.inputs(p);
    std::size_t slot = p % nworkers_;
    bool placed = false;
    for (const auto& ref : ctx.inputs[p]) {
      pooldetail::StoredInput in;
      if (ref.set) {
        in.set = ref.set->id;
        in.partition = ref.partition;
        bool known = false;
        for (const auto& u : upstream) known = known || u->id == ref.set->id;
        if (!known) upstream.push_back(ref.set);
        if (!placed) {
          const pooldetail::PartState& part =
              core_->sets_.at(ref.set->id).parts.at(ref.partition);
          if (part.owner >= 0 &&
              workers_[static_cast<std::size_t>(part.owner)].alive) {
            slot = static_cast<std::size_t>(part.owner);
            placed = true;
          }
        }
      } else {
        in.bytes = ref.inline_bytes;
      }
      out.task_inputs[p].push_back(std::move(in));
    }
    ctx.task_slot[p] = slot;
    ctx.assigned[slot].push_back(StageCtx::Task{p, 0});
  }

  ctx_ = &ctx;
  try {
    std::vector<bool> die(nworkers_, false);
    for (auto& w : workers_) {
      if (!w.alive) continue;
      send_stage_begin(w);
      // Planned kills draw at stage-local incarnation 0, the same site the
      // fork-per-stage path uses; replacements (stage_deaths > 0) never die.
      die[w.slot] = engine_.faults_.kill_worker(stage.name, w.slot, 0);
    }
    for (std::size_t p = 0; p < ctx.ntasks; ++p) {
      const std::size_t slot = ctx.task_slot[p];
      // Slot already died during dispatch (a fetch pumped); the drain below
      // re-dispatches its whole pending list against the replacement.
      if (ctx.stage_deaths[slot] != 0) continue;
      const bool last = !ctx.assigned[slot].empty() &&
                        ctx.assigned[slot].back().partition == p;
      send_assign(workers_[slot], p, 0, die[slot] && last);
    }
    while (ctx.completed < ctx.ntasks) {
      drain_reassign();
      if (ctx.completed >= ctx.ntasks) break;
      pump();
    }
    // Barrier: narrow workers just ack; wide owners assemble their staged
    // segments into resident target partitions and report sizes.
    ctx.ending = true;
    for (auto& w : workers_) {
      if (w.alive) send_stage_end(w);
    }
    const auto barrier_done = [&]() {
      for (const auto& w : workers_) {
        if (w.alive && !ctx.acked[w.slot]) return false;
      }
      return true;
    };
    while (!barrier_done()) pump();
  } catch (...) {
    ctx_ = nullptr;
    core_->sets_.erase(ctx.out_set);  // no handle exists yet
    kill_all();
    throw;
  }
  ctx_ = nullptr;

  std::size_t resident = 0;
  for (const auto& part : out.parts) resident += part.bytes;
  stage.resident_bytes += resident;

  auto handle = std::make_shared<PoolSet>();
  handle->id = ctx.out_set;
  handle->partitions = ctx.nparts;
  handle->core = core_;
  handle->upstream = std::move(upstream);
  plan.out = std::move(handle);
}

void WorkerPool::release_on_workers(std::uint64_t set) {
  ipc::TaskFrame frame;
  frame.kind = FrameKind::kRelease;
  WireWriter pw;
  pw.put_u64(set);
  frame.payload = pw.take();
  const std::string bytes = ipc::encode_frame(frame);
  for (auto& w : workers_) {
    if (w.alive) enqueue(w, bytes);
  }
}

void WorkerPool::kill_all() noexcept {
  for (auto& w : workers_) {
    if (!w.alive) continue;
    ::kill(w.pid, SIGKILL);
    retire(w);
  }
  for (auto& entry : core_->sets_) {
    for (auto& part : entry.second.parts) {
      if (part.owner >= 0) part.owner = pooldetail::PartState::kNone;
    }
  }
  for (auto* f : fetches_) f->failed = true;
  update_gauge();
}

void WorkerPool::shutdown() noexcept {
  bool any = false;
  for (const auto& w : workers_) any = any || w.alive;
  if (!any) return;
  // Clean shutdown: drain the submit queue (pending releases and friends),
  // append the shutdown marker, give the flush a bounded window, then let
  // EOF finish the job. Children exit on either signal.
  ipc::TaskFrame bye;
  bye.kind = FrameKind::kShutdown;
  const std::string bytes = ipc::encode_frame(bye);
  for (auto& w : workers_) {
    if (w.alive) enqueue(w, bytes);
  }
  for (int round = 0; round < 200; ++round) {
    std::vector<pollfd> fds;
    for (auto& w : workers_) {
      if (!w.alive) continue;
      flush(w);
      if (w.alive && w.outpos < w.outbuf.size()) {
        fds.push_back(pollfd{w.fd, POLLOUT, 0});
      }
    }
    if (fds.empty()) break;
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
  }
  for (auto& w : workers_) {
    if (w.alive) retire(w);
  }
  update_gauge();
}

void WorkerPool::update_gauge() const {
  std::size_t alive = 0;
  for (const auto& w : workers_) alive += w.alive ? 1 : 0;
  obs::global_counters().set_gauge("engine.pool.workers_alive",
                                   static_cast<double>(alive));
}

}  // namespace drapid
