#include "ml/smo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace drapid {
namespace ml {

SmoClassifier::SmoClassifier(SmoParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

namespace {

/// Simplified SMO (Platt 1998 / Ng's CS229 variant) for a linear kernel on
/// pre-standardized rows. Returns (weights, bias).
std::pair<std::vector<double>, double> train_binary(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    const SmoParams& params, Rng& rng) {
  const std::size_t n = x.size();
  const std::size_t d = x.empty() ? 0 : x[0].size();
  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  // Linear kernel lets us keep the weight vector incrementally.
  std::vector<double> w(d, 0.0);
  const auto f = [&](const std::vector<double>& xi) {
    double s = b;
    for (std::size_t k = 0; k < d; ++k) s += w[k] * xi[k];
    return s;
  };
  const auto dot = [&](const std::vector<double>& a,
                       const std::vector<double>& c) {
    double s = 0.0;
    for (std::size_t k = 0; k < d; ++k) s += a[k] * c[k];
    return s;
  };

  std::size_t passes = 0, iterations = 0;
  while (passes < params.max_passes && iterations < params.max_iterations) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ++iterations;
      const double ei = f(x[i]) - y[i];
      if (!((y[i] * ei < -params.tolerance && alpha[i] < params.c) ||
            (y[i] * ei > params.tolerance && alpha[i] > 0))) {
        continue;
      }
      std::size_t j = rng.below(n - 1);
      if (j >= i) ++j;
      const double ej = f(x[j]) - y[j];
      const double ai_old = alpha[i], aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(params.c, params.c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - params.c);
        hi = std::min(params.c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * dot(x[i], x[j]) - dot(x[i], x[i]) -
                         dot(x[j], x[j]);
      if (eta >= 0) continue;
      double aj = aj_old - y[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-5) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;
      // Incremental weight update for the linear kernel.
      for (std::size_t k = 0; k < d; ++k) {
        w[k] += (ai - ai_old) * y[i] * x[i][k] + (aj - aj_old) * y[j] * x[j][k];
      }
      const double b1 = b - ei - y[i] * (ai - ai_old) * dot(x[i], x[i]) -
                        y[j] * (aj - aj_old) * dot(x[i], x[j]);
      const double b2 = b - ej - y[i] * (ai - ai_old) * dot(x[i], x[j]) -
                        y[j] * (aj - aj_old) * dot(x[j], x[j]);
      if (ai > 0 && ai < params.c) b = b1;
      else if (aj > 0 && aj < params.c) b = b2;
      else b = 0.5 * (b1 + b2);
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }
  return {std::move(w), b};
}

}  // namespace

void SmoClassifier::train(const Dataset& data) {
  if (data.num_instances() == 0) {
    throw std::invalid_argument("cannot train SMO on an empty dataset");
  }
  machines_.clear();
  num_classes_ = data.num_classes();
  const std::size_t d = data.num_features();

  // Standardize features (zero mean, unit variance).
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (std::size_t f = 0; f < d; ++f) {
    const auto column = data.feature_column(f);
    mean_[f] = mean(column);
    const double sd = stddev(column);
    scale_[f] = sd > 1e-12 ? sd : 1.0;
  }
  const auto standardize = [&](std::span<const double> x) {
    std::vector<double> z(d);
    for (std::size_t f = 0; f < d; ++f) z[f] = (x[f] - mean_[f]) / scale_[f];
    return z;
  };

  // Group standardized instances by class.
  std::vector<std::vector<std::vector<double>>> by_class(num_classes_);
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    by_class[static_cast<std::size_t>(data.label(i))].push_back(
        standardize(data.instance(i)));
  }

  Rng rng(seed_);
  for (std::size_t a = 0; a < num_classes_; ++a) {
    for (std::size_t c = a + 1; c < num_classes_; ++c) {
      if (by_class[a].empty() || by_class[c].empty()) continue;
      std::vector<std::vector<double>> x;
      std::vector<double> y;
      for (const auto& xi : by_class[a]) {
        x.push_back(xi);
        y.push_back(+1.0);
      }
      for (const auto& xi : by_class[c]) {
        x.push_back(xi);
        y.push_back(-1.0);
      }
      auto [w, b] = train_binary(x, y, params_, rng);
      machines_.push_back(BinaryMachine{static_cast<int>(a),
                                        static_cast<int>(c), std::move(w), b});
    }
  }
}

int SmoClassifier::predict(std::span<const double> x) const {
  if (machines_.empty() && num_classes_ == 0) {
    throw std::logic_error("SMO not trained");
  }
  std::vector<double> z(mean_.size());
  for (std::size_t f = 0; f < z.size(); ++f) {
    z[f] = (x[f] - mean_[f]) / scale_[f];
  }
  std::vector<std::size_t> votes(num_classes_, 0);
  for (const auto& m : machines_) {
    double s = m.bias;
    for (std::size_t f = 0; f < z.size(); ++f) s += m.weights[f] * z[f];
    ++votes[static_cast<std::size_t>(s >= 0.0 ? m.class_a : m.class_b)];
  }
  std::size_t best = 0;
  for (std::size_t cl = 1; cl < votes.size(); ++cl) {
    if (votes[cl] > votes[best]) best = cl;
  }
  return static_cast<int>(best);
}

}  // namespace ml
}  // namespace drapid
