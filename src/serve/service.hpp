// Streaming survey service: chunked ingestion in front of the candidate
// archive.
//
// One SurveyService owns an ingest queue, a single writer thread and a
// CandidateArchive. Observations are submitted whole (or streamed
// block-by-block through an IngestSession); the writer thread feeds each
// one to a StreamingSweep in fixed-size sample chunks with overlap carry,
// archives the resulting candidates under the observation's key, and seals
// one segment per observation. Queries run on the callers' threads against
// archive snapshots, fully concurrent with ingestion.
//
// Instrumentation (src/obs): `serve.ingest` spans around each observation,
// `serve.query` spans/counters from the archive, `serve.observations` and
// `serve.candidates` counters, and a `serve.queue_depth` gauge tracking the
// ingest backlog.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dedisp/filterbank.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "serve/archive.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe.hpp"

namespace drapid {
namespace serve {

struct SurveyServiceConfig {
  FilterbankConfig filterbank;        ///< geometry every observation matches
  SinglePulseSearchParams search;     ///< sweep parameters
  /// Ingest chunk size in samples; 0 = one chunk per observation. The
  /// streaming sweep's output is byte-identical for any value.
  std::size_t chunk_samples = 4096;
};

class SurveyService {
 public:
  /// Opens (or creates) the archive at `archive_dir` and starts the writer
  /// thread. `grid` is the DM grid every ingest sweeps.
  SurveyService(std::string archive_dir, const DmGrid& grid,
                SurveyServiceConfig config);
  ~SurveyService();

  SurveyService(const SurveyService&) = delete;
  SurveyService& operator=(const SurveyService&) = delete;

  /// Enqueues one whole observation for ingestion; returns immediately.
  /// The filterbank must match the configured geometry (checked by the
  /// sweep on the writer thread; a mismatch fails that observation and
  /// counts `serve.ingest_errors`).
  void submit(ObservationId id, Filterbank fb);

  /// Blocks until every submitted observation has been ingested and sealed.
  void drain();

  /// Snapshot-isolated query (see CandidateArchive::query); safe from any
  /// thread, concurrent with ingestion.
  std::vector<CandidateRecord> query(const Query& q) const {
    return archive_.query(q);
  }

  const CandidateArchive& archive() const { return archive_; }
  std::size_t observations_ingested() const;
  std::size_t ingest_errors() const;

 private:
  struct Job {
    ObservationId id;
    Filterbank fb;
  };

  void writer_loop();
  void ingest(const Job& job);

  DmGrid grid_;
  SurveyServiceConfig config_;
  CandidateArchive archive_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< writer: queue non-empty or stopping
  std::condition_variable drain_cv_;  ///< drain(): queue empty and writer idle
  std::deque<Job> queue_;
  bool busy_ = false;       ///< writer is ingesting a popped job
  bool stopping_ = false;
  std::size_t ingested_ = 0;
  std::size_t errors_ = 0;

  std::thread writer_;  ///< last member: joins before the rest tears down
};

}  // namespace serve
}  // namespace drapid
