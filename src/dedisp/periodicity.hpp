// Periodicity search — the other phase-3 search mode of §3: "periodicity
// searches involve transforming and 'folding' the dedispersed data to
// identify signals with regular periods" (vs single-pulse searches, which
// skip these steps to stay sensitive to sporadic emitters like RRATs).
//
// Pipeline: dedispersed time series → FFT power spectrum → incoherent
// harmonic summing (a pulsar's pulse train puts power into many harmonics
// of the spin frequency) → candidate frequencies → epoch folding for the
// pulse profile.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace drapid {

/// In-place iterative radix-2 FFT; size must be a power of two (throws
/// std::invalid_argument otherwise). `inverse` applies the 1/N-normalized
/// inverse transform.
void fft_inplace(std::vector<std::complex<double>>& a, bool inverse = false);

/// Power spectrum of a real series: mean-subtracted, zero-padded to the
/// next power of two, |FFT|² for the positive frequencies (bins 1..N/2).
/// Bin k corresponds to frequency k / (N · dt).
std::vector<double> power_spectrum(const std::vector<double>& series);

struct PeriodicityCandidate {
  double frequency_hz = 0.0;
  double period_s = 0.0;
  /// Significance of the (harmonic-summed) power against the local noise.
  double snr = 0.0;
  /// Number of harmonics summed when this candidate scored best (1, 2, 4…).
  int harmonics = 1;
};

struct PeriodicitySearchParams {
  /// Harmonic-sum stages: 1, 2, 4, ... up to this many harmonics.
  int max_harmonics = 8;
  double snr_threshold = 5.0;
  std::size_t max_candidates = 16;
  /// Ignore bins below this frequency (red noise / DC region).
  double min_frequency_hz = 0.1;
};

/// Searches a dedispersed series for periodic signals. Candidates come back
/// sorted by S/N, de-duplicated against their own harmonics (a candidate at
/// an integer multiple/fraction of a stronger one is dropped).
std::vector<PeriodicityCandidate> periodicity_search(
    const std::vector<double>& series, double sample_time_ms,
    const PeriodicitySearchParams& params = {});

/// Epoch folding: co-adds the series modulo `period_s` into `bins` phase
/// bins (each bin averaged). A real pulsar shows a distinct profile peak.
std::vector<double> fold(const std::vector<double>& series,
                         double sample_time_ms, double period_s,
                         std::size_t bins);

/// Peak-to-rms contrast of a folded profile — the paper's "candidate
/// inspection" heuristic in number form (≫1 for a real pulsar at the right
/// period, ≈ a few for noise).
double profile_significance(const std::vector<double>& profile);

}  // namespace drapid
