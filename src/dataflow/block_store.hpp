// In-memory replicated block store — the HDFS stand-in.
//
// Files are split into fixed-size blocks, each replicated on `replication`
// distinct data nodes (chosen deterministically from the file name). The
// scheduler-facing part is the locality metadata: which nodes hold which
// block, so a task reading a block can run where the data lives — the
// property the paper's D-RAPID relies on when it reads the SPE and cluster
// files out of HDFS (Figure 2).
//
// Fault tolerance: data nodes can be marked dead (mark_node_dead). Reads
// then fail over to a surviving replica of each block, exactly as an HDFS
// client walks the replica list; only when every replica of some block is
// dead does a read throw. Placement stays deterministic, so which replica
// serves a block is a pure function of the file name and the dead set.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace drapid {

class BlockStore {
 public:
  struct BlockInfo {
    std::size_t offset = 0;  ///< byte offset within the file
    std::size_t size = 0;
    std::vector<int> replicas;  ///< data-node ids holding this block
  };

  /// `num_nodes` data nodes (paper: 15), blocks of `block_size` bytes,
  /// `replication` copies each (clamped to num_nodes).
  BlockStore(std::size_t num_nodes, std::size_t block_size = 1u << 20,
             std::size_t replication = 3);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t block_size() const { return block_size_; }

  /// Marks a data node as failed: its replicas stop serving reads. Out-of-
  /// range ids are ignored (a plan may name nodes a smaller cluster lacks).
  void mark_node_dead(int node);
  bool node_dead(int node) const { return dead_nodes_.count(node) > 0; }
  std::size_t num_dead_nodes() const { return dead_nodes_.size(); }
  /// Block reads served by a non-primary replica because the primary's node
  /// was dead (cumulative, for tests and fault reporting).
  std::size_t replica_failovers() const { return failovers_.load(); }

  /// Stores `contents` under `name`, replacing any existing file.
  void put(const std::string& name, std::string contents);

  bool exists(const std::string& name) const;
  void remove(const std::string& name);
  std::vector<std::string> list() const;

  /// Whole-file read; throws std::runtime_error if missing.
  const std::string& get(const std::string& name) const;
  std::size_t file_size(const std::string& name) const;

  /// Block layout of a file; throws if missing.
  const std::vector<BlockInfo>& blocks(const std::string& name) const;

  /// Reads one block's bytes.
  std::string read_block(const std::string& name, std::size_t block_index) const;

  /// Splits a file into line-aligned chunks, one per block (a reader that
  /// processes "its" block must see whole records, as Hadoop input formats
  /// do: a chunk starts after the first newline at/after the block start and
  /// runs through the first newline at/after the block end).
  std::vector<std::string> line_chunks(const std::string& name) const;

 private:
  struct File {
    std::string contents;
    std::vector<BlockInfo> layout;
  };
  const File& file_or_throw(const std::string& name) const;
  /// First live replica of `block`, counting a failover if that is not the
  /// primary; throws a descriptive error when every replica is dead.
  int live_replica_or_throw(const std::string& name, std::size_t block_index,
                            const BlockInfo& block) const;

  std::size_t num_nodes_;
  std::size_t block_size_;
  std::size_t replication_;
  std::map<std::string, File> files_;
  std::set<int> dead_nodes_;
  mutable std::atomic<std::size_t> failovers_{0};
};

}  // namespace drapid
