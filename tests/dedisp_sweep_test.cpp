// The shift-plan DM sweep: dedup equivalence against per-trial dedispersion,
// tail-normalization edge cases, scratch reuse, and cross-thread determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dedisp/single_pulse_search.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "synth/dispersion.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

FilterbankConfig small_config() {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.num_channels = 32;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 10.0;
  return cfg;
}

Filterbank noisy_filterbank(FilterbankConfig cfg, std::uint64_t seed) {
  Filterbank fb(cfg);
  Rng rng(seed);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(3.0, 40.0, 3.0, 20.0);
  return fb;
}

/// The pre-shift-plan reference: dedisperse sample-major with per-sample
/// contributor increments, exactly as the seed implementation did.
std::vector<double> dedisperse_reference(const Filterbank& fb, double dm) {
  const std::size_t n = fb.num_samples();
  const double dt_s = fb.config().sample_time_ms * 1e-3;
  std::vector<std::size_t> shifts(fb.num_channels());
  const double ref_delay = dispersion_delay_s(dm, fb.channel_freq_mhz(0));
  for (std::size_t c = 0; c < fb.num_channels(); ++c) {
    const double delay =
        dispersion_delay_s(dm, fb.channel_freq_mhz(c)) - ref_delay;
    shifts[c] = static_cast<std::size_t>(delay / dt_s + 0.5);
  }
  std::vector<double> series(n, 0.0);
  std::vector<std::uint32_t> contributors(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t c = 0; c < fb.num_channels(); ++c) {
      const std::size_t idx = s + shifts[c];
      if (idx < n) {
        series[s] += fb.at(c, idx);
        ++contributors[s];
      }
    }
  }
  const double full = static_cast<double>(fb.num_channels());
  for (std::size_t s = 0; s < n; ++s) {
    if (contributors[s] > 0) {
      series[s] *= full / static_cast<double>(contributors[s]);
    }
  }
  return series;
}

bool events_identical(const std::vector<SinglePulseEvent>& a,
                      const std::vector<SinglePulseEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].dm != b[i].dm || a[i].snr != b[i].snr ||
        a[i].time_s != b[i].time_s || a[i].sample != b[i].sample ||
        a[i].downfact != b[i].downfact) {
      return false;
    }
  }
  return true;
}

TEST(ShiftPlan, MatchesReferenceDedispersion) {
  const Filterbank fb = noisy_filterbank(small_config(), 3);
  for (double dm : {0.0, 7.77, 40.0, 123.4}) {
    const auto series = dedisperse(fb, dm);
    const auto reference = dedisperse_reference(fb, dm);
    ASSERT_EQ(series.size(), reference.size());
    for (std::size_t s = 0; s < series.size(); ++s) {
      ASSERT_EQ(series[s], reference[s]) << "dm " << dm << " sample " << s;
    }
  }
}

TEST(ShiftPlan, ClampsShiftsBeyondObservation) {
  // A DM so large every channel but the reference shifts past the end.
  const Filterbank fb = noisy_filterbank(small_config(), 3);
  const auto shifts = dispersion_shifts(fb, 50000.0);
  EXPECT_EQ(shifts.front(), 0u);  // channel 0 is the delay reference
  for (std::size_t c = 1; c < shifts.size(); ++c) {
    EXPECT_LE(shifts[c], fb.num_samples());
  }
  EXPECT_EQ(shifts.back(), fb.num_samples());
  const auto series = dedisperse(fb, 50000.0);
  const auto reference = dedisperse_reference(fb, 50000.0);
  for (std::size_t s = 0; s < series.size(); ++s) {
    ASSERT_EQ(series[s], reference[s]) << "sample " << s;
  }
}

TEST(ShiftPlan, SingleChannelNeedsNoRenormalization) {
  FilterbankConfig cfg = small_config();
  cfg.num_channels = 1;
  Filterbank fb(cfg);
  Rng rng(5);
  fb.add_noise(rng, 1.0);
  // One channel: the series is the channel itself at any DM (shift 0 for the
  // reference channel), and contributors is never in (0, channels).
  const auto series = dedisperse(fb, 250.0);
  ASSERT_EQ(series.size(), fb.num_samples());
  for (std::size_t s = 0; s < series.size(); ++s) {
    ASSERT_EQ(series[s], static_cast<double>(fb.at(0, s)));
  }
}

TEST(SweepPlan, DedupsIdenticalShiftVectors) {
  const Filterbank fb = noisy_filterbank(small_config(), 3);
  // 0.002-step trials at 2 ms sampling: adjacent trials round to the same
  // shift vector, so unique plans must be well below the trial count.
  const DmGrid grid({{0.0, 5.0, 0.002}});
  const SweepPlan sweep = build_sweep_plan(fb, grid);
  EXPECT_EQ(sweep.num_trials, grid.size());
  EXPECT_LT(sweep.plans.size(), grid.size() / 2);
  // plan_of_trial and the per-plan trial lists are consistent partitions.
  ASSERT_EQ(sweep.plan_of_trial.size(), sweep.num_trials);
  std::size_t total = 0;
  for (std::size_t p = 0; p < sweep.plans.size(); ++p) {
    for (std::size_t trial : sweep.plans[p].trials) {
      ASSERT_EQ(sweep.plan_of_trial[trial], p);
    }
    total += sweep.plans[p].trials.size();
  }
  EXPECT_EQ(total, sweep.num_trials);
  for (const auto& plan : sweep.plans) {
    EXPECT_EQ(plan.max_shift,
              *std::max_element(plan.shifts.begin(), plan.shifts.end()));
  }
}

TEST(SweepPlan, DedupedSweepMatchesPerTrialSearch) {
  const Filterbank fb = noisy_filterbank(small_config(), 3);
  const DmGrid grid({{0.0, 10.0, 0.01}, {10.0, 20.0, 0.03}});
  const SinglePulseSearchParams params;
  const auto swept = single_pulse_search(fb, grid, params);

  // Reference: dedisperse + detect every trial independently, merge, sort.
  std::vector<SinglePulseEvent> reference;
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const double dm = grid.dm_at(t);
    const auto series = dedisperse(fb, dm);
    const auto events =
        detect_events(series, dm, fb.config().sample_time_ms, params);
    reference.insert(reference.end(), events.begin(), events.end());
  }
  std::sort(reference.begin(), reference.end(),
            [](const SinglePulseEvent& a, const SinglePulseEvent& b) {
              if (a.dm != b.dm) return a.dm < b.dm;
              return a.time_s < b.time_s;
            });
  EXPECT_TRUE(events_identical(swept, reference));
}

TEST(DetectEvents, ScratchReuseMatchesFreshBuffers) {
  const Filterbank fb = noisy_filterbank(small_config(), 7);
  const SinglePulseSearchParams params;
  DetectScratch reused;
  for (double dm : {40.0, 3.0, 91.5}) {
    const auto series = dedisperse(fb, dm);
    const auto fresh =
        detect_events(series, dm, fb.config().sample_time_ms, params);
    std::vector<SinglePulseEvent> events;
    detect_events_into(series, dm, fb.config().sample_time_ms, params, reused,
                       events);
    EXPECT_TRUE(events_identical(events, fresh)) << "dm " << dm;
  }
}

TEST(SinglePulseSearch, DeterministicAcrossThreadCounts) {
  const Filterbank fb = noisy_filterbank(small_config(), 3);
  const DmGrid grid({{0.0, 30.0, 0.05}, {30.0, 60.0, 0.1}});
  SinglePulseSearchParams params;
  const auto serial = single_pulse_search(fb, grid, params);
  for (std::size_t threads : {2u, 8u}) {
    params.threads = threads;
    const auto parallel = single_pulse_search(fb, grid, params);
    EXPECT_TRUE(events_identical(serial, parallel))
        << "threads " << threads;
  }
}

TEST(SinglePulseSearch, StridedSweepUsesNominalTrialDms) {
  const Filterbank fb = noisy_filterbank(small_config(), 3);
  const DmGrid grid({{0.0, 40.0, 0.5}});
  SinglePulseSearchParams params;
  params.dm_stride = 7;
  const auto events = single_pulse_search(fb, grid, params);
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    // Every reported DM is one of the strided trials.
    const std::size_t index = grid.index_of(e.dm);
    EXPECT_EQ(index % 7, 0u);
    EXPECT_EQ(grid.dm_at(index), e.dm);
  }
}

TEST(SinglePulseSearch, EmitsCountersAndSpans) {
  const Filterbank fb = noisy_filterbank(small_config(), 3);
  const DmGrid grid({{0.0, 10.0, 0.01}});

  auto& counters = obs::global_counters();
  const auto snapshot = [&](const char* name) {
    for (const auto& [key, value] : counters.counters_snapshot()) {
      if (key == name) return value;
    }
    return std::int64_t{0};
  };
  const std::int64_t trials_before = snapshot("dedisp.trials");
  const std::int64_t plans_before = snapshot("dedisp.plans_unique");
  const std::int64_t hits_before = snapshot("dedisp.plan_dedup_hits");

  auto& tracer = obs::global_tracer();
  tracer.clear();
  tracer.enable(true);
  const auto events = single_pulse_search(fb, grid, {});
  tracer.enable(false);

  EXPECT_EQ(snapshot("dedisp.trials") - trials_before,
            static_cast<std::int64_t>(grid.size()));
  const std::int64_t unique = snapshot("dedisp.plans_unique") - plans_before;
  const std::int64_t hits = snapshot("dedisp.plan_dedup_hits") - hits_before;
  EXPECT_GT(unique, 0);
  EXPECT_EQ(unique + hits, static_cast<std::int64_t>(grid.size()));

  bool saw_sweep = false;
  std::size_t plan_spans = 0;
  for (const auto& event : tracer.events()) {
    if (event.phase != obs::TraceEvent::Phase::kBegin) continue;
    if (event.name == "dedisp.sweep") {
      saw_sweep = true;
      EXPECT_EQ(event.category, "dedisp");
    }
    plan_spans += event.name == "dedisp.plan";
  }
  EXPECT_TRUE(saw_sweep);
  EXPECT_EQ(plan_spans, static_cast<std::size_t>(unique));
  EXPECT_EQ(tracer.open_spans(), 0u);
  tracer.clear();
  (void)events;
}

}  // namespace
}  // namespace drapid
