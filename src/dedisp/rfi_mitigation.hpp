// RFI mitigation ahead of the DM sweep: zero-DM subtraction and robust
// per-channel masking (the excision stage every production single-pulse
// pipeline runs before dedispersion).
//
// Two cleaners compose behind the MitigationPolicy knob in
// SinglePulseSearchParams:
//
//  - Zero-DM subtraction: broadband impulsive RFI is undispersed, so the
//    cross-channel mean at each time sample carries the interference and
//    almost none of a dispersed pulse (which occupies one channel per
//    sample). Subtracting the per-sample mean cancels the impulse while
//    attenuating a genuine pulse only by ~1/num_channels. The subtraction
//    is frame-local, so the streaming sweep applies it chunk by chunk with
//    byte-identical results to the one-shot path.
//
//  - Channel masking: persistent narrowband carriers park on a few channels
//    and inflate their mean/variance far beyond the band's. Per-channel
//    mean and variance are scored against the cross-channel median/MAD
//    (robust_stats — the same estimator the detector standardizes with),
//    and outliers beyond `mask_sigma` robust sigmas are excluded from the
//    sweep entirely: their shift-plan entries saturate so they contribute
//    neither samples nor tail-normalization counts, keeping S/N exact for
//    the surviving band (see build_sweep_plan's masked overload).
//
// Emits `dedisp.rfi.*` spans and counters through src/obs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dedisp/filterbank.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "spe/dm_grid.hpp"
#include "spe/spe.hpp"

namespace drapid {

/// "off" / "zerodm" / "mask" / "both" — for CLI flags and span args.
const char* mitigation_policy_name(MitigationPolicy policy);

/// Parses "off" / "zerodm" / "mask" / "both" (as in `--rfi=`). Throws
/// std::invalid_argument on anything else.
MitigationPolicy parse_mitigation_policy(const std::string& name);

/// True when the policy includes channel masking / zero-DM subtraction.
inline bool policy_masks_channels(MitigationPolicy policy) {
  return policy == MitigationPolicy::kChannelMask ||
         policy == MitigationPolicy::kBoth;
}
inline bool policy_zero_dm(MitigationPolicy policy) {
  return policy == MitigationPolicy::kZeroDm ||
         policy == MitigationPolicy::kBoth;
}

/// Estimates the per-channel exclusion mask (1 = masked) from per-channel
/// mean/variance scored against the band's robust median/MAD. Deterministic:
/// same data, same params, same mask — the streaming service estimates once
/// up front and gets byte-identical results to the one-shot path. The
/// masked fraction is capped at `params.max_mask_fraction` (worst offenders
/// kept, ties broken toward lower channels).
std::vector<std::uint8_t> estimate_channel_mask(
    const Filterbank& fb, const RfiMitigationParams& params);

/// Zero-DM subtraction over a channel-major block: for each time sample in
/// [begin, end), subtracts the cross-channel mean (double accumulation,
/// rounded to float once) from every contributing channel. `row_stride` is
/// the distance between consecutive channel rows; `mask` (nullable) excludes
/// channels from both the mean and the subtraction. Per-sample and
/// independent of blocking, so chunked application matches one-shot bit for
/// bit.
void zero_dm_subtract(float* data, std::size_t row_stride,
                      std::size_t channels, std::size_t begin, std::size_t end,
                      const std::uint8_t* mask);

/// What the mitigation stage did — for spans, counters, and CLI reporting.
struct MitigationReport {
  MitigationPolicy policy = MitigationPolicy::kOff;
  std::size_t channels_masked = 0;
  std::size_t zero_dm_samples = 0;  ///< time samples mean-subtracted
};

/// Applies `params` to `fb` in place: resolves the channel mask (estimating
/// it unless `mask` already carries one) and runs zero-DM subtraction over
/// the unmasked channels when the policy asks for it. On return `mask` holds
/// the resolved per-channel mask (empty when the policy does not mask).
MitigationReport apply_rfi_mitigation(Filterbank& fb,
                                      const RfiMitigationParams& params,
                                      std::vector<std::uint8_t>& mask);

namespace detail {

/// single_pulse_search's mitigation route: clones the filterbank when the
/// policy mutates data, cleans it, and re-enters the sweep with the policy
/// cleared and the mask resolved. Mask-only policies skip the clone — the
/// masked shift plans never read the hot channels at all.
std::vector<SinglePulseEvent> mitigated_single_pulse_search(
    const Filterbank& fb, const DmGrid& grid,
    const SinglePulseSearchParams& params);

}  // namespace detail

}  // namespace drapid
