// Structured RFI families for the synthetic survey layer.
//
// The clean simulator's interference is unstructured: isolated broadband
// bursts and pulse-mimicking ridges. Real bands carry *structured*
// interference with temporal and spectral shape, and mitigation stages are
// judged against exactly those shapes. Three families cover the canonical
// cases (the same taxonomy the FAST/CRAFTS and SKA pipeline papers excise
// ahead of dedispersion):
//
//   * periodic broadband bursts — a radar/ignition-style train of
//     undispersed impulses with a fixed repetition period. Zero-DM
//     subtraction is the designed counter.
//   * persistent narrowband carriers — a transmitter parked on a few
//     channels for most of the observation, inflating that channel's mean
//     and variance. Channel masking is the designed counter.
//   * swept chirps — a carrier drifting through the band, crossing channels
//     over seconds. Dedispersion sees a pulse-like ridge whose DM drifts
//     with time; coincidence rejection (it appears in every beam) and the
//     classifier are the counters.
//
// Every instance drawn is ground truth: the scenario is returned alongside
// whatever it rendered, so mitigation precision/recall is directly
// measurable against the injected astrophysical pulses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "spe/spe.hpp"
#include "util/rng.hpp"

namespace drapid {

struct SurveyConfig;
class DmGrid;

enum class RfiFamily {
  kPeriodicBroadband,
  kNarrowbandCarrier,
  kSweptChirp,
};

/// "periodic_broadband" / "narrowband_carrier" / "swept_chirp".
const char* rfi_family_name(RfiFamily family);

/// One ground-truth interference instance.
struct RfiInstance {
  RfiFamily family = RfiFamily::kPeriodicBroadband;
  /// Beam the instance is local to, or kAllBeams for interference that
  /// enters every beam's sidelobes (what coincidence rejection catches).
  static constexpr std::size_t kAllBeams =
      std::numeric_limits<std::size_t>::max();
  std::size_t beam = kAllBeams;
  double t_begin_s = 0.0;
  double t_end_s = 0.0;
  /// Burst repetition period (periodic broadband only).
  double period_s = 0.0;
  /// Event-level S/N scale / filterbank amplitude in noise-sigma units.
  double strength = 0.0;
  /// Occupied band (narrowband carrier: a few channels wide; swept chirp:
  /// the sweep's start/end frequencies, begin > end for a downward drift).
  double freq_begin_mhz = 0.0;
  double freq_end_mhz = 0.0;
};

/// The structured interference drawn for one observation.
struct RfiScenario {
  std::vector<RfiInstance> instances;
  bool empty() const { return instances.empty(); }
};

/// Draws a scenario from the survey's structured-RFI rates (Poisson counts
/// per observation, uniform arrival). Deterministic in `rng`; draws nothing
/// when every structured rate is zero, so pre-RFI presets consume no stream.
RfiScenario draw_rfi_scenario(const SurveyConfig& config, double obs_length_s,
                              Rng& rng);

/// Renders a scenario into an *event-level* observation (the analytic
/// simulator's output space): each instance appends the SPE signature a
/// single-pulse search would emit for it — burst trains flat across DM,
/// carrier-driven threshold crossings biased to low DM, and chirp ridges
/// whose apparent DM drifts with time. Events carry no family tag (a real
/// pipeline would not know); the scenario itself is the label.
void render_rfi_events(const RfiScenario& scenario, const SurveyConfig& config,
                       double obs_length_s, Rng& rng,
                       std::vector<SinglePulseEvent>& events);

}  // namespace drapid
