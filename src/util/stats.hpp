// Descriptive statistics and simple linear regression.
//
// The regression here is the exact computation Algorithm 1 of the paper runs
// once per bin: an ordinary-least-squares fit Y = a + b*X through the SPEs of
// a bin, whose slope b drives the climbing/peak/descending state machine.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace drapid {

/// Result of an ordinary-least-squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 0 when the fit is degenerate.
  double r_squared = 0.0;
  /// Number of points the fit used.
  std::size_t n = 0;
};

/// Least-squares fit through (x[i], y[i]). With fewer than two points, or all
/// x equal, returns a flat line through the mean with r_squared 0.
LinearFit linear_regression(std::span<const double> x,
                            std::span<const double> y);

/// Incremental OLS accumulator: lets Algorithm 1 slide a bin across a cluster
/// without re-summing, and lets callers fit streams without materializing
/// vectors.
class RunningFit {
 public:
  // add/remove are defined inline: hot kernels (rapid_search) call them once
  // per event, and keeping the accumulators in registers across the loop
  // matters there. The operation order matches linear_regression's
  // accumulation loop exactly, so a fresh RunningFit over the same points
  // yields a bit-identical fit.
  void add(double x, double y) {
    ++n_;
    sx_ += x;
    sy_ += y;
    sxx_ += x * x;
    syy_ += y * y;
    sxy_ += x * y;
  }
  void remove(double x, double y) {
    if (n_ == 0) return;
    --n_;
    sx_ -= x;
    sy_ -= y;
    sxx_ -= x * x;
    syy_ -= y * y;
    sxy_ -= x * y;
  }
  std::size_t count() const { return n_; }
  /// Current fit over all added points (same degenerate rules as
  /// linear_regression).
  LinearFit fit() const;

 private:
  std::size_t n_ = 0;
  double sx_ = 0.0, sy_ = 0.0, sxx_ = 0.0, syy_ = 0.0, sxy_ = 0.0;
};

/// Five-number summary plus mean/stddev, the quantity the paper's boxplot
/// figures (5 and 6) are drawn from.
struct Summary {
  std::size_t n = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double iqr() const { return q3 - q1; }
};

/// Computes a Summary; quantiles use linear interpolation (type-7, the
/// default in R/NumPy). Empty input yields an all-zero summary.
Summary summarize(std::span<const double> values);

double mean(std::span<const double> values);
/// Population standard deviation when sample=false, sample (n-1) otherwise.
double stddev(std::span<const double> values, bool sample = true);
/// Interpolated quantile q in [0,1] of values (need not be sorted).
double quantile(std::span<const double> values, double q);
double median(std::span<const double> values);

/// Pearson correlation of two equal-length sequences; 0 if degenerate.
double pearson(std::span<const double> x, std::span<const double> y);

/// Skewness (Fisher) and excess kurtosis; 0 for degenerate inputs. Used by
/// the feature extractor to characterize SNR-vs-DM shapes.
double skewness(std::span<const double> values);
double excess_kurtosis(std::span<const double> values);

/// Shannon entropy (bits) of a discrete distribution given as counts.
double entropy_from_counts(std::span<const std::size_t> counts);

}  // namespace drapid
