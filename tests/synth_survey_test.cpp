#include "synth/survey.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "synth/dispersion.hpp"

namespace drapid {
namespace {

ObservationId test_obs(const std::string& dataset) {
  ObservationId id;
  id.dataset = dataset;
  id.mjd = 56123.0;
  id.ra_deg = 100.0;
  id.dec_deg = 20.0;
  id.beam = 0;
  return id;
}

SyntheticSource bright_pulsar() {
  SyntheticSource src;
  src.name = "TEST1";
  src.type = SourceType::kPulsar;
  src.dm = 60.0;
  src.period_s = 2.0;
  src.width_ms = 8.0;
  src.median_snr = 20.0;
  src.snr_sigma = 0.2;
  src.emission_rate = 0.8;
  return src;
}

TEST(Population, DrawsRequestedCountsWithinRanges) {
  PopulationConfig cfg;
  cfg.num_pulsars = 30;
  cfg.num_rrats = 5;
  cfg.dm_min = 10.0;
  cfg.dm_max = 200.0;
  Rng rng(11);
  const auto sources = draw_population(cfg, rng);
  ASSERT_EQ(sources.size(), 35u);
  int rrats = 0;
  std::set<std::string> names;
  for (const auto& s : sources) {
    rrats += (s.type == SourceType::kRrat);
    EXPECT_GE(s.dm, cfg.dm_min);
    EXPECT_LE(s.dm, cfg.dm_max);
    EXPECT_GT(s.period_s, 0.0);
    EXPECT_GT(s.width_ms, 0.0);
    EXPECT_GT(s.median_snr, 5.0);
    names.insert(s.name);
  }
  EXPECT_EQ(rrats, 5);
}

TEST(Population, DeterministicForSeed) {
  PopulationConfig cfg;
  Rng a(99), b(99);
  const auto s1 = draw_population(cfg, a);
  const auto s2 = draw_population(cfg, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].name, s2[i].name);
    EXPECT_DOUBLE_EQ(s1[i].dm, s2[i].dm);
    EXPECT_DOUBLE_EQ(s1[i].period_s, s2[i].period_s);
  }
}

TEST(SurveySimulator, DeterministicForSeed) {
  const auto run = [] {
    SurveySimulator sim(SurveyConfig::gbt350drift(), 7);
    return sim.simulate(test_obs("GBT350Drift"), {bright_pulsar()});
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.data.events.size(), b.data.events.size());
  EXPECT_EQ(a.truth.size(), b.truth.size());
  for (std::size_t i = 0; i < a.data.events.size(); i += 37) {
    EXPECT_EQ(a.data.events[i], b.data.events[i]);
  }
}

TEST(SurveySimulator, EmptyBeamStillHasNoiseButNoTruth) {
  SurveySimulator sim(SurveyConfig::gbt350drift(), 13);
  const auto obs = sim.simulate(test_obs("GBT350Drift"), {});
  EXPECT_TRUE(obs.truth.empty());
  EXPECT_GT(obs.data.events.size(), 100u);  // noise + junk still present
}

TEST(SurveySimulator, BrightPulsarProducesTruthPulses) {
  SurveySimulator sim(SurveyConfig::gbt350drift(), 17);
  const auto obs = sim.simulate(test_obs("GBT350Drift"), {bright_pulsar()});
  ASSERT_FALSE(obs.truth.empty());
  // ~140 s / 2 s period * 0.8 emission — expect dozens of pulses.
  EXPECT_GT(obs.truth.size(), 20u);
  for (const auto& gt : obs.truth) {
    EXPECT_EQ(gt.source_name, "TEST1");
    EXPECT_GE(gt.peak_snr, sim.config().snr_threshold);
    EXPECT_GT(gt.num_spes, 0u);
    EXPECT_NEAR(gt.dm, 60.0, 1e-9);
    EXPECT_GE(gt.time_s, 0.0);
    EXPECT_LE(gt.time_s, sim.config().obs_length_s + 2.0);
  }
}

TEST(SurveySimulator, PulseSpesPeakNearTrueDm) {
  SurveySimulator sim(SurveyConfig::gbt350drift(), 23);
  const auto src = bright_pulsar();
  const auto obs = sim.simulate(test_obs("GBT350Drift"), {src});
  ASSERT_FALSE(obs.truth.empty());
  // Collect SPEs near the first truth pulse in time and find the SNR-max DM.
  const auto& gt = obs.truth.front();
  double best_snr = 0.0, best_dm = -1.0;
  for (const auto& e : obs.data.events) {
    if (std::abs(e.time_s - gt.time_s) < 0.05 && e.snr > best_snr) {
      best_snr = e.snr;
      best_dm = e.dm;
    }
  }
  ASSERT_GT(best_snr, 0.0);
  // SNR peak should land within a few trial spacings of the true DM.
  EXPECT_NEAR(best_dm, src.dm, 2.0);
}

TEST(SurveySimulator, EventsAreSortedAndAboveThreshold) {
  SurveySimulator sim(SurveyConfig::palfa(), 29);
  const auto sources = sim.draw_sources();
  const auto obs = sim.simulate(
      test_obs("PALFA"), {sources.begin(), sources.begin() + 3});
  const auto& events = obs.data.events;
  ASSERT_GT(events.size(), 0u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].dm, events[i].dm);
  }
  for (const auto& e : events) {
    ASSERT_GE(e.snr, sim.config().snr_threshold - 1e-9);
    ASSERT_GE(e.downfact, 1);
  }
}

TEST(SurveySimulator, SimulateManyRespectsCountAndDataset) {
  SurveySimulator sim(SurveyConfig::gbt350drift(), 31);
  const auto sources = sim.draw_sources();
  const auto all = sim.simulate_many(5, sources, 0.05);
  ASSERT_EQ(all.size(), 5u);
  std::set<std::string> keys;
  for (const auto& o : all) {
    EXPECT_EQ(o.data.id.dataset, "GBT350Drift");
    keys.insert(o.data.id.key());
  }
  EXPECT_EQ(keys.size(), 5u);  // distinct observations
}

TEST(SurveySimulator, SurveysMatchPaperPopulations) {
  const auto gbt = SurveyConfig::gbt350drift();
  EXPECT_EQ(gbt.population.num_pulsars, 48u);  // §4: 48 distinct pulsars
  const auto palfa = SurveyConfig::palfa();
  EXPECT_EQ(palfa.population.num_pulsars + palfa.population.num_rrats,
            98u);  // §4: 98 pulsars and RRATs
  EXPECT_GT(palfa.center_freq_mhz, gbt.center_freq_mhz);
}

TEST(SurveySimulator, FainterPulsarYieldsFewerSpesPerPulse) {
  SurveySimulator sim(SurveyConfig::gbt350drift(), 41);
  auto faint = bright_pulsar();
  faint.median_snr = 6.5;
  faint.name = "FAINT";
  const auto obs = sim.simulate(test_obs("GBT350Drift"), {faint});
  SurveySimulator sim2(SurveyConfig::gbt350drift(), 41);
  const auto obs2 = sim2.simulate(test_obs("GBT350Drift"), {bright_pulsar()});
  const auto avg_spes = [](const SimulatedObservation& o) {
    if (o.truth.empty()) return 0.0;
    double total = 0.0;
    for (const auto& gt : o.truth) total += gt.num_spes;
    return total / static_cast<double>(o.truth.size());
  };
  EXPECT_LT(avg_spes(obs), avg_spes(obs2));
}

}  // namespace
}  // namespace drapid
