#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace drapid {
namespace ml {
namespace {

Dataset small() {
  Dataset d({"f0", "f1", "f2"}, {"neg", "pos"});
  d.add(std::vector<double>{1, 2, 3}, 0);
  d.add(std::vector<double>{4, 5, 6}, 1);
  d.add(std::vector<double>{7, 8, 9}, 1);
  return d;
}

TEST(Dataset, ShapeAndAccessors) {
  const Dataset d = small();
  EXPECT_EQ(d.num_instances(), 3u);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_EQ(d.instance(1)[2], 6);
  EXPECT_EQ(d.label(2), 1);
  EXPECT_EQ(d.feature_names()[1], "f1");
}

TEST(Dataset, RejectsBadInstances) {
  Dataset d({"a"}, {"x", "y"});
  EXPECT_THROW(d.add(std::vector<double>{1, 2}, 0), std::invalid_argument);
  EXPECT_THROW(d.add(std::vector<double>{1}, 5), std::invalid_argument);
  EXPECT_THROW(d.add(std::vector<double>{1}, -1), std::invalid_argument);
}

TEST(Dataset, FeatureColumn) {
  const Dataset d = small();
  EXPECT_EQ(d.feature_column(1), (std::vector<double>{2, 5, 8}));
}

TEST(Dataset, ClassCounts) {
  const Dataset d = small();
  EXPECT_EQ(d.class_counts(), (std::vector<std::size_t>{1, 2}));
}

TEST(Dataset, SelectFeaturesReordersColumns) {
  const Dataset d = small();
  const Dataset sel = d.select_features({2, 0});
  EXPECT_EQ(sel.num_features(), 2u);
  EXPECT_EQ(sel.feature_names()[0], "f2");
  EXPECT_EQ(sel.instance(1)[0], 6);
  EXPECT_EQ(sel.instance(1)[1], 4);
  EXPECT_EQ(sel.label(2), 1);
  EXPECT_THROW(d.select_features({9}), std::invalid_argument);
}

TEST(Dataset, SubsetKeepsRowOrder) {
  const Dataset d = small();
  const Dataset sub = d.subset({2, 0});
  EXPECT_EQ(sub.num_instances(), 2u);
  EXPECT_EQ(sub.instance(0)[0], 7);
  EXPECT_EQ(sub.instance(1)[0], 1);
  EXPECT_THROW(d.subset({99}), std::invalid_argument);
}

}  // namespace
}  // namespace ml
}  // namespace drapid
