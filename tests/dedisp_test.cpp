#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dedisp/single_pulse_search.hpp"
#include "synth/dispersion.hpp"

namespace drapid {
namespace {

FilterbankConfig small_config() {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.num_channels = 32;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 20.0;
  return cfg;
}

TEST(Filterbank, GeometryAndChannelOrdering) {
  const Filterbank fb(small_config());
  EXPECT_EQ(fb.num_channels(), 32u);
  EXPECT_EQ(fb.num_samples(), 10000u);
  // Channel 0 at the top of the band, strictly descending.
  EXPECT_GT(fb.channel_freq_mhz(0), 350.0);
  EXPECT_LT(fb.channel_freq_mhz(31), 350.0);
  for (std::size_t c = 1; c < fb.num_channels(); ++c) {
    EXPECT_LT(fb.channel_freq_mhz(c), fb.channel_freq_mhz(c - 1));
  }
}

TEST(Filterbank, RejectsInvalidConfig) {
  FilterbankConfig cfg = small_config();
  cfg.num_channels = 0;
  EXPECT_THROW(Filterbank{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.sample_time_ms = 0.0;
  EXPECT_THROW(Filterbank{cfg}, std::invalid_argument);
}

TEST(Filterbank, InjectedPulseSweepsDownwardInFrequency) {
  Filterbank fb(small_config());
  fb.inject_pulse(2.0, 60.0, 10.0, 20.0);
  // The pulse must arrive later in lower-frequency channels.
  const auto argmax = [&](std::size_t channel) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < fb.num_samples(); ++s) {
      if (fb.at(channel, s) > fb.at(channel, best)) best = s;
    }
    return best;
  };
  const std::size_t first = argmax(0);
  const std::size_t last = argmax(fb.num_channels() - 1);
  EXPECT_GT(last, first);
  // And by the dispersion relation's magnitude.
  const double expected_s =
      dispersion_delay_s(60.0, fb.channel_freq_mhz(fb.num_channels() - 1)) -
      dispersion_delay_s(60.0, fb.channel_freq_mhz(0));
  const double measured_s = static_cast<double>(last - first) * 2e-3;
  EXPECT_NEAR(measured_s, expected_s, 0.01);
}

TEST(Dedisperse, CorrectDmConcentratesThePulse) {
  Filterbank fb(small_config());
  Rng rng(3);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(5.0, 45.0, 4.0, 20.0);
  const auto right = dedisperse(fb, 45.0);
  const auto wrong = dedisperse(fb, 5.0);
  const double peak_right = *std::max_element(right.begin(), right.end());
  const double peak_wrong = *std::max_element(wrong.begin(), wrong.end());
  EXPECT_GT(peak_right, peak_wrong * 1.3);
}

TEST(DetectEvents, FindsInjectedPulseAtRightTime) {
  Filterbank fb(small_config());
  Rng rng(7);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(8.0, 30.0, 3.0, 20.0);
  const auto series = dedisperse(fb, 30.0);
  const auto events = detect_events(series, 30.0, 2.0, {});
  ASSERT_FALSE(events.empty());
  const auto best = *std::max_element(
      events.begin(), events.end(),
      [](const auto& a, const auto& b) { return a.snr < b.snr; });
  // Arrival in the dedispersed series is referenced to the top channel.
  const double expected_t =
      8.0 + dispersion_delay_s(30.0, fb.channel_freq_mhz(0));
  EXPECT_NEAR(best.time_s, expected_t, 0.1);
  EXPECT_GT(best.snr, 8.0);
  EXPECT_GE(best.downfact, 4);  // 20 ms pulse at 2 ms sampling
}

TEST(DetectEvents, PureNoiseYieldsFewDetections) {
  Filterbank fb(small_config());
  Rng rng(11);
  fb.add_noise(rng, 1.0);
  const auto series = dedisperse(fb, 20.0);
  const auto events = detect_events(series, 20.0, 2.0, {});
  // 10,000 samples x 6 boxcars at a 5-sigma threshold: a handful at most.
  EXPECT_LT(events.size(), 8u);
}

TEST(DetectEvents, EmptySeriesYieldsNothing) {
  EXPECT_TRUE(detect_events({}, 10.0, 1.0, {}).empty());
}

TEST(SinglePulseSearch, RecoversPulseNearTrueDm) {
  Filterbank fb(small_config());
  Rng rng(13);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(6.0, 55.0, 3.5, 25.0);
  const DmGrid grid({{0.0, 120.0, 1.0}});
  SinglePulseSearchParams params;
  const auto events = single_pulse_search(fb, grid, params);
  ASSERT_FALSE(events.empty());
  const auto best = *std::max_element(
      events.begin(), events.end(),
      [](const auto& a, const auto& b) { return a.snr < b.snr; });
  EXPECT_NEAR(best.dm, 55.0, 4.0);
  // Events must come out sorted by (dm, time).
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].dm, events[i].dm);
  }
}

TEST(SinglePulseSearch, BroadbandImpulsePeaksAtZeroDm) {
  Filterbank fb(small_config());
  Rng rng(17);
  fb.add_noise(rng, 1.0);
  fb.inject_broadband_impulse(4.0, 8.0);
  const DmGrid grid({{0.0, 60.0, 2.0}});
  const auto events = single_pulse_search(fb, grid, {});
  ASSERT_FALSE(events.empty());
  const auto best = *std::max_element(
      events.begin(), events.end(),
      [](const auto& a, const auto& b) { return a.snr < b.snr; });
  EXPECT_LT(best.dm, 6.0);
}

TEST(SinglePulseSearch, NarrowbandRfiIsDilutedAcrossChannels) {
  // A single hot channel adds 1/N of its power to every trial; the matched
  // filter should not report a strong event at any DM.
  Filterbank fb(small_config());
  Rng rng(19);
  fb.add_noise(rng, 1.0);
  fb.inject_rfi_tone(5, 2.0, 3.0, 3.2);
  const DmGrid grid({{0.0, 60.0, 2.0}});
  const auto events = single_pulse_search(fb, grid, {});
  for (const auto& e : events) {
    EXPECT_LT(e.snr, 9.0) << "RFI tone leaked as a strong event";
  }
}

TEST(SinglePulseSearch, StrideSkipsTrials) {
  Filterbank fb(small_config());
  Rng rng(23);
  fb.add_noise(rng, 1.0);
  const DmGrid grid({{0.0, 60.0, 1.0}});
  SinglePulseSearchParams fine;
  SinglePulseSearchParams coarse;
  coarse.dm_stride = 10;
  // Strided search touches a subset of DMs.
  std::set<double> fine_dms, coarse_dms;
  for (const auto& e : single_pulse_search(fb, grid, fine)) {
    fine_dms.insert(e.dm);
  }
  for (const auto& e : single_pulse_search(fb, grid, coarse)) {
    coarse_dms.insert(e.dm);
  }
  for (double dm : coarse_dms) {
    EXPECT_NEAR(std::fmod(dm, 10.0), 0.0, 1e-9);
  }
}

class PulseDmSweep : public ::testing::TestWithParam<double> {};

TEST_P(PulseDmSweep, SearchLocalizesDm) {
  Filterbank fb(small_config());
  Rng rng(29);
  fb.add_noise(rng, 1.0);
  fb.inject_pulse(5.0, GetParam(), 4.0, 25.0);
  const DmGrid grid({{0.0, 120.0, 2.0}});
  const auto events = single_pulse_search(fb, grid, {});
  ASSERT_FALSE(events.empty());
  const auto best = *std::max_element(
      events.begin(), events.end(),
      [](const auto& a, const auto& b) { return a.snr < b.snr; });
  EXPECT_NEAR(best.dm, GetParam(), 6.0);
}

INSTANTIATE_TEST_SUITE_P(Dms, PulseDmSweep,
                         ::testing::Values(10.0, 40.0, 80.0, 110.0));

}  // namespace
}  // namespace drapid
