// The runtime-dispatched SIMD kernels (dedisp/kernels.hpp): scalar-vs-AVX2
// bit-identity for every kernel, select_kth exactness against a full sort on
// adversarial shapes, dispatch reporting, and the dispersion_shifts
// overflow/clamp hardening the kernels' callers rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "dedisp/filterbank.hpp"
#include "dedisp/kernels.hpp"
#include "dedisp/single_pulse_search.hpp"
#include "util/rng.hpp"

namespace drapid {
namespace {

std::vector<double> noise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

std::vector<float> noise_f32(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(KernelDispatch, NameMatchesPath) {
  const std::string name = kernels::dispatch_name();
  EXPECT_TRUE(name == "avx2" || name == "scalar");
  EXPECT_EQ(name == "avx2", kernels::using_avx2());
  if (kernels::using_avx2()) EXPECT_TRUE(kernels::avx2_supported());
}

TEST(KernelDispatch, ForcedScalarEnvRespected) {
  // The cache resolves DRAPID_FORCE_SCALAR at first kernel use; when the CI
  // forced-scalar job sets it, the dispatcher must report the scalar path.
  const char* forced = std::getenv("DRAPID_FORCE_SCALAR");
  if (forced != nullptr && std::string(forced) == "1") {
    EXPECT_FALSE(kernels::using_avx2());
    EXPECT_STREQ(kernels::dispatch_name(), "scalar");
  }
}

// Every vector-width remainder from 0 to a few multiples of the widest lane
// count, so head, body and scalar tail all get hit.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                              31, 33, 100, 1000, 1001};

TEST(Kernels, AccumulateF32PathsBitIdentical) {
  if (!kernels::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host";
  for (const std::size_t n : kSizes) {
    const auto in = noise_f32(n, 7 + n);
    auto a = noise(n, 100 + n);
    auto b = a;
    kernels::scalar::accumulate_f32(a.data(), in.data(), n);
    kernels::avx2::accumulate_f32(b.data(), in.data(), n);
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(Kernels, AccumulateF64PathsBitIdentical) {
  if (!kernels::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host";
  for (const std::size_t n : kSizes) {
    const auto in = noise(n, 9 + n);
    auto a = noise(n, 200 + n);
    auto b = a;
    kernels::scalar::accumulate_f64(a.data(), in.data(), n);
    kernels::avx2::accumulate_f64(b.data(), in.data(), n);
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(Kernels, CombineF64PathsBitIdentical) {
  if (!kernels::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host";
  for (const std::size_t n : kSizes) {
    for (const std::size_t groups : {std::size_t{1}, std::size_t{3},
                                     std::size_t{8}}) {
      std::vector<std::vector<double>> streams;
      std::vector<const double*> ptrs;
      for (std::size_t g = 0; g < groups; ++g) {
        streams.push_back(noise(n, 300 + 10 * n + g));
        ptrs.push_back(streams.back().data());
      }
      std::vector<double> a(n, -1.0), b(n, -2.0);
      kernels::scalar::combine_f64(a.data(), ptrs.data(), groups, n);
      kernels::avx2::combine_f64(b.data(), ptrs.data(), groups, n);
      EXPECT_EQ(a, b) << "n=" << n << " groups=" << groups;
    }
  }
}

TEST(Kernels, CombineF64ZeroGroupsZeroFills) {
  std::vector<double> out(9, 42.0);
  kernels::combine_f64(out.data(), nullptr, 0, out.size());
  for (const double x : out) EXPECT_EQ(x, 0.0);
}

TEST(Kernels, CombineMatchesSequentialAccumulate) {
  // The fused combine must regroup nothing: summing the streams with
  // repeated accumulate_f64 passes gives bit-identical output.
  const std::size_t n = 257;
  std::vector<std::vector<double>> streams;
  std::vector<const double*> ptrs;
  for (std::size_t g = 0; g < 5; ++g) {
    streams.push_back(noise(n, 400 + g));
    ptrs.push_back(streams.back().data());
  }
  std::vector<double> fused(n);
  kernels::combine_f64(fused.data(), ptrs.data(), ptrs.size(), n);
  std::vector<double> seq(n, 0.0);
  for (const auto* p : ptrs) kernels::accumulate_f64(seq.data(), p, n);
  EXPECT_EQ(fused, seq);
}

TEST(Kernels, AbsDeviationPathsBitIdentical) {
  if (!kernels::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host";
  for (const std::size_t n : kSizes) {
    const auto in = noise(n, 11 + n);
    std::vector<double> a(n), b(n);
    kernels::scalar::abs_deviation(a.data(), in.data(), n, 0.25);
    kernels::avx2::abs_deviation(b.data(), in.data(), n, 0.25);
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(Kernels, AbsDeviationAliasingAllowed) {
  auto v = noise(101, 13);
  auto expect = v;
  for (auto& x : expect) x = std::abs(x - 0.5);
  kernels::abs_deviation(v.data(), v.data(), v.size(), 0.5);
  EXPECT_EQ(v, expect);
}

double sorted_kth(std::vector<double> v, std::size_t k) {
  std::sort(v.begin(), v.end());
  return v[k];
}

TEST(Kernels, SelectKthExactOnAdversarialShapes) {
  std::vector<std::vector<double>> inputs;
  inputs.push_back(noise(5000, 17));          // noise-like (the real workload)
  inputs.push_back(std::vector<double>(777, 3.5));  // all equal
  {
    auto v = noise(1000, 19);
    std::sort(v.begin(), v.end());
    inputs.push_back(v);                      // sorted
    std::reverse(v.begin(), v.end());
    inputs.push_back(v);                      // reverse sorted
  }
  {
    std::vector<double> v;                    // heavy duplicate runs
    for (int i = 0; i < 900; ++i) v.push_back(static_cast<double>(i % 3));
    inputs.push_back(v);
  }
  inputs.push_back({1.0});                    // singleton
  inputs.push_back(noise(31, 23));            // below the small-n cutoff

  for (const auto& input : inputs) {
    const std::size_t n = input.size();
    for (const std::size_t k : {std::size_t{0}, n / 2, n - 1}) {
      const double expect = sorted_kth(input, k);
      std::vector<double> scratch(n);
      auto v = input;
      EXPECT_EQ(kernels::select_kth(v.data(), scratch.data(), n, k), expect)
          << "n=" << n << " k=" << k;
      if (kernels::avx2_supported()) {
        v = input;
        EXPECT_EQ(kernels::avx2::select_kth(v.data(), scratch.data(), n, k),
                  expect)
            << "avx2 n=" << n << " k=" << k;
        v = input;
        EXPECT_EQ(kernels::scalar::select_kth(v.data(), scratch.data(), n, k),
                  expect)
            << "scalar n=" << n << " k=" << k;
      }
    }
  }
}

TEST(Kernels, CertifyBelowPathsBitIdentical) {
  if (!kernels::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host";
  const std::size_t n = 300;
  const auto series = noise(n, 29);
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + series[i];
  for (const std::size_t width : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}}) {
    const std::size_t back = width / 2;
    const std::size_t ahead = width - back;
    const std::size_t begin = back;
    const std::size_t end = n - ahead + 1;
    std::vector<unsigned char> a(n, 1), b(n, 1);
    kernels::scalar::certify_below(prefix.data(), begin, end, back, ahead,
                                   1.5, a.data());
    kernels::avx2::certify_below(prefix.data(), begin, end, back, ahead, 1.5,
                                 b.data());
    EXPECT_EQ(a, b) << "width=" << width;
  }
}

// --- dispersion_shifts overflow/clamp hardening -----------------------------

Filterbank tiny_filterbank() {
  FilterbankConfig cfg;
  cfg.center_freq_mhz = 350.0;
  cfg.bandwidth_mhz = 100.0;
  cfg.num_channels = 8;
  cfg.sample_time_ms = 2.0;
  cfg.obs_length_s = 2.0;
  return Filterbank(cfg);
}

TEST(DispersionShifts, NegativeDmThrowsInsteadOfWrapping) {
  // A negative DM makes the rounded shift negative; the unchecked uint32
  // cast used to wrap it to ~4e9 samples silently.
  const Filterbank fb = tiny_filterbank();
  EXPECT_THROW(dispersion_shifts(fb, -40.0), std::domain_error);
}

TEST(DispersionShifts, NonFiniteDmThrows) {
  const Filterbank fb = tiny_filterbank();
  EXPECT_THROW(dispersion_shifts(fb, std::nan("")), std::domain_error);
  EXPECT_THROW(
      dispersion_shifts(fb, std::numeric_limits<double>::infinity()),
      std::domain_error);
}

TEST(DispersionShifts, ExtremeDmSaturatesAtObservationLength) {
  // An absurd DM whose delay dwarfs the observation must clamp every
  // low-frequency channel's shift to num_samples (contributing nothing),
  // never wrap around uint32.
  const Filterbank fb = tiny_filterbank();
  const auto shifts = dispersion_shifts(fb, 1e9);
  ASSERT_EQ(shifts.size(), fb.num_channels());
  EXPECT_EQ(shifts.front(), 0u);  // reference channel
  for (std::size_t c = 1; c < shifts.size(); ++c) {
    EXPECT_EQ(shifts[c], fb.num_samples()) << "channel " << c;
  }
}

TEST(DispersionShifts, ZeroAndPositiveDmStayExact) {
  const Filterbank fb = tiny_filterbank();
  const auto zero = dispersion_shifts(fb, 0.0);
  for (const auto s : zero) EXPECT_EQ(s, 0u);
  const auto some = dispersion_shifts(fb, 40.0);
  for (std::size_t c = 1; c < some.size(); ++c) {
    EXPECT_GE(some[c], some[c - 1]) << "delays grow toward low frequencies";
  }
}

}  // namespace
}  // namespace drapid
