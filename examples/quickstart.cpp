// Quickstart: simulate one observation, cluster its single pulse events,
// run the RAPID search, and print the identified single pulses.
//
//   ./examples/quickstart [--seed N] [--snr X]
#include <iostream>

#include "clustering/dbscan.hpp"
#include "rapid/multithreaded.hpp"
#include "synth/survey.hpp"
#include "util/options.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  Options opts(argc, argv, {{"seed", "42"}, {"snr", "18"}});

  // 1. A synthetic GBT350Drift-style observation with one pulsar in beam.
  SurveyConfig survey = SurveyConfig::gbt350drift();
  survey.obs_length_s = 60.0;
  SurveySimulator sim(survey, static_cast<std::uint64_t>(opts.integer("seed")));
  SyntheticSource pulsar;
  pulsar.name = "J1234+56";
  pulsar.dm = 72.0;
  pulsar.period_s = 3.0;
  pulsar.width_ms = 12.0;
  pulsar.median_snr = opts.number("snr");
  pulsar.emission_rate = 0.8;
  ObservationId id;
  id.dataset = survey.name;
  id.mjd = 56789.0;
  const SimulatedObservation obs = sim.simulate(id, {pulsar});
  std::cout << "observation: " << obs.data.events.size() << " single pulse "
            << "events, " << obs.truth.size() << " injected pulses\n";

  // 2. Cluster SPEs in DM-vs-time space (pipeline stage 2).
  const auto clustering = dbscan_cluster(obs.data, *survey.grid, {});
  std::cout << "clustering: " << clustering.clusters.size() << " clusters\n";

  // 3. Search every cluster with Algorithm 1 and extract features.
  const auto items = make_work_items(obs.data, clustering);
  RapidRunStats stats;
  const auto pulses =
      run_rapid_multithreaded(items, RapidParams{}, *survey.grid, 2, &stats);
  std::cout << "search: " << stats.pulses_found << " single pulses from "
            << stats.spes_scanned << " SPEs in " << stats.wall_seconds
            << " s\n\n";

  // 4. Show the brightest identified pulses.
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cluster", "rank", "SNRPeakDM", "SNRMax", "AvgSNR",
                  "NumSpes", "SNRRatio"});
  int shown = 0;
  for (const auto& p : pulses) {
    if (p.pulse_rank != 1 || p.features[kSnrMax] < 8.0) continue;
    rows.push_back({std::to_string(p.cluster.cluster_id),
                    std::to_string(p.pulse_rank),
                    format_number(p.features[kSnrPeakDm]),
                    format_number(p.features[kSnrMax]),
                    format_number(p.features[kAvgSnr]),
                    format_number(p.features[kNumSpes]),
                    format_number(p.features[kSnrRatio])});
    if (++shown >= 12) break;
  }
  std::cout << render_table(rows);
  std::cout << "\n(peaks near DM " << pulsar.dm
            << " are detections of " << pulsar.name << ")\n";
  return 0;
}
