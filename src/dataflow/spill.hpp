// Memory-budgeted caching of string-pair RDDs with real spill-to-disk.
//
// Spark keeps RDDs in executor memory and swaps partitions to disk when they
// do not fit; the paper's one-executor run fell off a cliff for exactly this
// reason (§6.1, RQ2). CachedStringRdd reproduces the mechanism: if the
// dataset's estimated size exceeds the engine's total executor memory, every
// partition is serialized to a spill file (real file I/O) and read back on
// access. The written and re-read bytes are recorded in the job metrics,
// which is what the cluster cost model prices as disk traffic.
#pragma once

#include <string>
#include <vector>

#include "dataflow/rdd.hpp"

namespace drapid {

class CachedStringRdd {
 public:
  using StringRdd = Rdd<std::string, std::string>;

  /// Takes ownership of `rdd`; spills it if it exceeds the engine's memory
  /// budget. Records a "<name>:cache" stage with the spill write bytes.
  CachedStringRdd(Engine& engine, StringRdd rdd, const std::string& name);

  bool spilled() const { return spilled_; }
  std::size_t estimated_bytes() const { return bytes_; }

  /// Returns the dataset, reading partitions back from disk if spilled
  /// (records a "<name>:materialize" stage with the read bytes).
  StringRdd materialize();

 private:
  Engine& engine_;
  std::string name_;
  StringRdd in_memory_;       // valid when !spilled_
  std::vector<std::string> files_;  // one per partition when spilled_
  std::uint64_t partitioner_id_ = 0;
  std::size_t bytes_ = 0;
  bool spilled_ = false;
};

}  // namespace drapid
