#include "ml/classifier.hpp"

#include <stdexcept>

#include "ml/mlp.hpp"
#include "ml/random_forest.hpp"
#include "ml/rules.hpp"
#include "ml/smo.hpp"
#include "ml/tree.hpp"

namespace drapid {
namespace ml {

std::vector<int> Classifier::predict_batch(const Dataset& data) const {
  std::vector<int> out(data.num_instances());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = predict(data.instance(i));
  }
  return out;
}

const std::vector<LearnerType>& all_learner_types() {
  static const std::vector<LearnerType> kAll = {
      LearnerType::kMpn, LearnerType::kSmo,  LearnerType::kJrip,
      LearnerType::kJ48, LearnerType::kPart, LearnerType::kRandomForest};
  return kAll;
}

std::string learner_name(LearnerType type) {
  switch (type) {
    case LearnerType::kJ48: return "J48";
    case LearnerType::kRandomForest: return "RF";
    case LearnerType::kPart: return "PART";
    case LearnerType::kJrip: return "JRip";
    case LearnerType::kSmo: return "SMO";
    case LearnerType::kMpn: return "MPN";
  }
  throw std::invalid_argument("unknown learner type");
}

std::unique_ptr<Classifier> make_classifier(LearnerType type,
                                            std::uint64_t seed) {
  switch (type) {
    case LearnerType::kJ48:
      return std::make_unique<DecisionTree>(TreeParams{}, seed);
    case LearnerType::kRandomForest:
      return std::make_unique<RandomForest>(ForestParams{}, seed);
    case LearnerType::kPart:
      return std::make_unique<PartClassifier>(PartParams{}, seed);
    case LearnerType::kJrip:
      return std::make_unique<JripClassifier>(JripParams{}, seed);
    case LearnerType::kSmo:
      return std::make_unique<SmoClassifier>(SmoParams{}, seed);
    case LearnerType::kMpn:
      return std::make_unique<MlpClassifier>(MlpParams{}, seed);
  }
  throw std::invalid_argument("unknown learner type");
}

}  // namespace ml
}  // namespace drapid
