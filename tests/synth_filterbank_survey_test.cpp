// Filterbank-backed survey observations: the end-to-end path where SPE
// generation runs the real shift-plan DM sweep instead of the analytic model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "synth/filterbank_survey.hpp"

namespace drapid {
namespace {

SyntheticSource bright_rrat() {
  SyntheticSource src;
  src.name = "J0000+00";
  src.type = SourceType::kRrat;
  src.dm = 42.0;
  src.width_ms = 16.0;
  src.median_snr = 14.0;
  src.snr_sigma = 0.05;
  src.emission_rate = 3600.0;  // about one burst per second of observation
  return src;
}

SurveyConfig test_survey() {
  SurveyConfig cfg = SurveyConfig::gbt350drift();
  // A small grid keeps the sweep fast while still spanning the source DM.
  cfg.grid = std::make_shared<DmGrid>(DmGrid({{0.0, 80.0, 0.5}}));
  cfg.rfi_bursts_per_observation = 0.0;
  return cfg;
}

ObservationId test_obs() {
  ObservationId id;
  id.dataset = "GBT350Drift";
  id.mjd = 56001.0;
  id.ra_deg = 123.0;
  id.dec_deg = 45.0;
  id.beam = 1;
  return id;
}

TEST(FilterbankSurvey, SweepRecoversInjectedSource) {
  const SurveyConfig cfg = test_survey();
  Rng rng(11);
  FilterbankSurveyOptions options;
  options.num_channels = 32;
  options.sample_time_ms = 2.0;
  options.obs_length_s = 8.0;
  const auto obs = simulate_filterbank_observation(cfg, test_obs(),
                                                  {bright_rrat()}, rng,
                                                  options);
  EXPECT_EQ(obs.data.id, test_obs());
  ASSERT_FALSE(obs.truth.empty());
  ASSERT_FALSE(obs.data.events.empty());
  // Events come out of single_pulse_search sorted by (dm, time).
  for (std::size_t i = 1; i < obs.data.events.size(); ++i) {
    ASSERT_LE(obs.data.events[i - 1].dm, obs.data.events[i].dm);
  }
  // A strong detection near the source's true DM (a burst clipped by the
  // observation edge can put the single brightest event elsewhere via tail
  // renormalization, so the claim is local to the true DM, not a global
  // argmax), and the truth records should have measured the pulses.
  double best_near_truth = 0.0;
  for (const auto& e : obs.data.events) {
    if (std::abs(e.dm - 42.0) <= 6.0) {
      best_near_truth = std::max(best_near_truth, e.snr);
    }
  }
  EXPECT_GT(best_near_truth, cfg.snr_threshold + 3.0);
  for (const auto& gt : obs.truth) {
    EXPECT_GT(gt.num_spes, 0u);
    EXPECT_GT(gt.peak_snr, cfg.snr_threshold);
    EXPECT_EQ(gt.dm, 42.0);
  }
}

TEST(FilterbankSurvey, BlankSkyHasNoTruth) {
  const SurveyConfig cfg = test_survey();
  Rng rng(13);
  FilterbankSurveyOptions options;
  options.num_channels = 16;
  options.sample_time_ms = 2.0;
  options.obs_length_s = 5.0;
  const auto obs =
      simulate_filterbank_observation(cfg, test_obs(), {}, rng, options);
  EXPECT_TRUE(obs.truth.empty());
}

TEST(FilterbankSurvey, ThreadedSweepMatchesSerial) {
  const SurveyConfig cfg = test_survey();
  FilterbankSurveyOptions options;
  options.num_channels = 32;
  options.sample_time_ms = 2.0;
  options.obs_length_s = 8.0;
  Rng serial_rng(11);
  const auto serial = simulate_filterbank_observation(
      cfg, test_obs(), {bright_rrat()}, serial_rng, options);
  options.threads = 4;
  Rng parallel_rng(11);
  const auto parallel = simulate_filterbank_observation(
      cfg, test_obs(), {bright_rrat()}, parallel_rng, options);
  ASSERT_EQ(serial.data.events.size(), parallel.data.events.size());
  for (std::size_t i = 0; i < serial.data.events.size(); ++i) {
    EXPECT_EQ(serial.data.events[i], parallel.data.events[i]);
  }
}

TEST(FilterbankSurvey, RequiresAGrid) {
  SurveyConfig cfg = test_survey();
  cfg.grid.reset();
  Rng rng(7);
  EXPECT_THROW(
      simulate_filterbank_observation(cfg, test_obs(), {}, rng, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace drapid
