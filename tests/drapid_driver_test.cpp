#include "drapid/driver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "drapid/pipeline.hpp"
#include "rapid/multithreaded.hpp"

namespace drapid {
namespace {

EngineConfig engine_config(std::size_t executors = 4) {
  EngineConfig cfg;
  cfg.num_executors = executors;
  cfg.cores_per_executor = 2;
  cfg.worker_threads = 2;
  cfg.partitions_per_core = 4;
  cfg.executor_memory_bytes = 64ull << 20;
  return cfg;
}

PipelineConfig small_pipeline(std::uint64_t seed = 5) {
  PipelineConfig cfg;
  cfg.survey = SurveyConfig::gbt350drift();
  cfg.survey.obs_length_s = 60.0;
  cfg.survey.noise_events_per_second = 10.0;
  cfg.num_observations = 4;
  cfg.visibility = 0.08;
  cfg.seed = seed;
  return cfg;
}

TEST(DrapidDriver, EndToEndProducesLabeledPulses) {
  Engine engine(engine_config());
  BlockStore store(15);
  const auto run = run_full_pipeline(engine, store, small_pipeline());
  ASSERT_GT(run.data.total_spes, 1000u);
  ASSERT_GT(run.data.clusters.size(), 10u);
  EXPECT_GT(run.result.records.size(), 0u);
  EXPECT_EQ(run.result.clusters_searched, run.data.clusters.size());
  EXPECT_GT(run.result.spes_scanned, 0u);
  // The ML file landed in the store.
  EXPECT_TRUE(store.exists("GBT350Drift.ml.csv"));
}

TEST(DrapidDriver, MatchesMultithreadedRapidResults) {
  // RQ2 ground truth: D-RAPID and the multithreaded baseline implement the
  // same search; on the same input they must find pulses in the same
  // clusters with matching peak features.
  Engine engine(engine_config());
  BlockStore store(15);
  const auto cfg = small_pipeline(11);
  const auto run = run_full_pipeline(engine, store, cfg);

  // Multithreaded baseline over the same observations.
  std::vector<IdentifiedPulse> baseline;
  for (const auto& obs : run.data.observations) {
    const auto clustering =
        dbscan_cluster(obs.data, *cfg.survey.grid, cfg.dbscan);
    const auto items = make_work_items(obs.data, clustering);
    const auto found =
        run_rapid_multithreaded(items, cfg.drapid.rapid, *cfg.survey.grid, 2);
    baseline.insert(baseline.end(), found.begin(), found.end());
  }
  ASSERT_GT(baseline.size(), 0u);
  // Every baseline pulse has a D-RAPID record with the same peak DM.
  // (The distributed path selects cluster SPEs by bounding box rather than
  // exact membership, so allow a small mismatch count from overlaps.)
  std::size_t matched = 0;
  for (const auto& bp : baseline) {
    for (const auto& rec : run.result.records) {
      if (rec.obs == bp.cluster.obs && rec.cluster_id == bp.cluster.cluster_id &&
          std::abs(rec.features[kSnrPeakDm] - bp.features[kSnrPeakDm]) < 1e-6) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GE(matched, baseline.size() * 9 / 10)
      << matched << " of " << baseline.size();
}

TEST(DrapidDriver, RecordsAreDeterministicAcrossRuns) {
  const auto once = [](std::size_t threads) {
    EngineConfig cfg = engine_config();
    cfg.worker_threads = threads;
    Engine engine(cfg);
    BlockStore store(15);
    return run_full_pipeline(engine, store, small_pipeline(21)).result.records;
  };
  const auto a = once(1);
  const auto b = once(3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].obs, b[i].obs);
    EXPECT_EQ(a[i].cluster_id, b[i].cluster_id);
    EXPECT_EQ(a[i].pulse_index, b[i].pulse_index);
    EXPECT_DOUBLE_EQ(a[i].features[kSnrPeakDm], b[i].features[kSnrPeakDm]);
  }
}

TEST(DrapidDriver, CopartitioningEliminatesJoinShuffle) {
  BlockStore store(15);
  const auto cfg = small_pipeline(31);
  const auto data = prepare_pipeline_data(cfg);
  store.put("d.csv", data.data_csv);
  store.put("c.csv", data.cluster_csv);

  // Shuffle traffic attributable to the join itself (the internal
  // shuffleL/shuffleR stages the join inserts for non-conforming inputs).
  const auto join_shuffle_bytes = [](const JobMetrics& m) {
    std::size_t bytes = 0;
    for (const auto& s : m.stages) {
      if (s.name.rfind("join:clusters+data:shuffle", 0) == 0) {
        bytes += s.total_shuffle_bytes();
      }
    }
    return bytes;
  };

  Engine engine(engine_config());
  DrapidConfig with;
  auto r_with = run_drapid(engine, store, "d.csv", "c.csv", "", *cfg.survey.grid, with);
  DrapidConfig without;
  without.copartition = false;
  auto r_without =
      run_drapid(engine, store, "d.csv", "c.csv", "", *cfg.survey.grid, without);

  // Same results either way...
  ASSERT_EQ(r_with.records.size(), r_without.records.size());
  // ...but only the co-partitioned plan performs the join with zero
  // shuffle — the paper's "matching keys are naturally colocated" claim.
  EXPECT_EQ(join_shuffle_bytes(r_with.metrics), 0u);
  EXPECT_GT(join_shuffle_bytes(r_without.metrics), 0u);
}

TEST(DrapidDriver, SkippingAggregationInflatesJoinOutput) {
  BlockStore store(15);
  const auto cfg = small_pipeline(41);
  const auto data = prepare_pipeline_data(cfg);
  store.put("d.csv", data.data_csv);
  store.put("c.csv", data.cluster_csv);

  const auto join_bytes_out = [](const JobMetrics& m) {
    std::size_t bytes = 0;
    for (const auto& s : m.stages) {
      if (s.name == "join:clusters+data") {
        for (const auto& t : s.tasks) bytes += t.bytes_out;
      }
    }
    return bytes;
  };

  Engine engine(engine_config());
  DrapidConfig with;
  auto r_with = run_drapid(engine, store, "d.csv", "c.csv", "", *cfg.survey.grid, with);
  DrapidConfig without;
  without.aggregate_before_join = false;
  auto r_without =
      run_drapid(engine, store, "d.csv", "c.csv", "", *cfg.survey.grid, without);

  ASSERT_EQ(r_with.records.size(), r_without.records.size());
  // Duplicate cluster keys each drag a copy of the observation's SPE blob
  // through the join: output bytes inflate by roughly the cluster count.
  EXPECT_GT(join_bytes_out(r_without.metrics),
            2 * join_bytes_out(r_with.metrics));
}

TEST(DrapidDriver, TruthLabelsMarkInjectedPulses) {
  Engine engine(engine_config());
  BlockStore store(15);
  auto cfg = small_pipeline(51);
  cfg.visibility = 0.15;  // more pulsars in beam
  const auto run = run_full_pipeline(engine, store, cfg);
  std::size_t labeled = 0;
  for (const auto& rec : run.result.records) {
    labeled += !rec.truth_label.empty();
  }
  std::size_t truth_pulses = 0;
  for (const auto& obs : run.data.observations) {
    truth_pulses += obs.truth.size();
  }
  if (truth_pulses == 0) GTEST_SKIP() << "no injections at this seed";
  EXPECT_GT(labeled, 0u);
  EXPECT_LT(labeled, run.result.records.size());  // noise exists too
}

TEST(DrapidDriver, SpillsWhenExecutorMemoryTooSmall) {
  BlockStore store(15);
  const auto cfg = small_pipeline(61);
  const auto data = prepare_pipeline_data(cfg);
  store.put("d.csv", data.data_csv);
  store.put("c.csv", data.cluster_csv);

  EngineConfig small = engine_config(/*executors=*/1);
  small.executor_memory_bytes = 64 << 10;  // 64 KB: cannot hold the dataset
  Engine engine(small);
  const auto r = run_drapid(engine, store, "d.csv", "c.csv", "",
                            *cfg.survey.grid, {});
  EXPECT_GT(r.metrics.total_spill_bytes(), 0u);

  EngineConfig big = engine_config(/*executors=*/8);
  Engine engine2(big);
  const auto r2 = run_drapid(engine2, store, "d.csv", "c.csv", "",
                             *cfg.survey.grid, {});
  EXPECT_EQ(r2.metrics.total_spill_bytes(), 0u);
  EXPECT_EQ(r.records.size(), r2.records.size());
}

}  // namespace
}  // namespace drapid
