// Dispersion physics used to synthesize realistic single-pulse search output.
//
// A pulse from a source at dispersion measure DM arrives later at lower radio
// frequencies (delay ∝ DM · ν⁻²). A single-pulse search dedisperses at a grid
// of trial DMs; at the wrong trial DM the residual smearing broadens the pulse
// and suppresses its S/N following the classic Cordes & McLaughlin (2003)
// degradation curve. That curve is what makes a real pulse appear as a *peak*
// in SNR-vs-DM space — the structure Algorithm 1 of the paper searches for.
#pragma once

namespace drapid {

/// Dispersion constant in MHz² pc⁻¹ cm³ s (Lorimer & Kramer 2012).
inline constexpr double kDispersionConstant = 4.148808e3;

/// Arrival-time delay (seconds) at frequency `freq_mhz` relative to infinite
/// frequency, for a source at dispersion measure `dm` (pc cm⁻³).
double dispersion_delay_s(double dm, double freq_mhz);

/// Differential delay (seconds) across a band centered at `center_freq_mhz`
/// with total bandwidth `bandwidth_mhz`, for dispersion-measure error
/// `dm_error` — the residual smearing when dedispersed at the wrong DM.
double smearing_s(double dm_error, double center_freq_mhz,
                  double bandwidth_mhz);

/// Cordes & McLaughlin (2003) S/N degradation factor in (0, 1]:
/// the ratio S(δDM)/S(0) for a Gaussian pulse of full width `width_ms`
/// observed at `center_freq_mhz` with `bandwidth_mhz`, dedispersed with a
/// trial-DM error of `dm_error` (pc cm⁻³). Equals 1 at dm_error = 0 and
/// falls off monotonically.
double snr_degradation(double dm_error, double width_ms,
                       double center_freq_mhz, double bandwidth_mhz);

/// Half-width (in pc cm⁻³) of the DM range over which the degradation factor
/// stays above `level` (e.g. 0.5 gives the FWHM of the SNR-vs-DM peak).
/// Found by bisection; `level` must be in (0, 1).
double dm_width_at_level(double level, double width_ms, double center_freq_mhz,
                         double bandwidth_mhz);

}  // namespace drapid
