// End-to-end D-RAPID survey search (the Figure 2 workflow): simulate a
// survey, cluster SPEs, upload data/cluster files to the block store, run
// the distributed search, and report work metrics plus elapsed-time
// estimates from the cluster cost model.
//
//   ./examples/survey_search [--survey gbt350|palfa] [--observations N]
//                            [--executors N] [--seed N]
#include <iostream>

#include "dataflow/cluster_model.hpp"
#include "drapid/pipeline.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/text_table.hpp"

using namespace drapid;

int main(int argc, char** argv) {
  Options opts(argc, argv, {{"survey", "gbt350"},
                            {"observations", "6"},
                            {"executors", "5"},
                            {"seed", "3"}});
  set_log_level(LogLevel::kInfo);

  PipelineConfig config;
  config.survey = opts.str("survey") == "palfa" ? SurveyConfig::palfa()
                                                : SurveyConfig::gbt350drift();
  config.num_observations =
      static_cast<std::size_t>(opts.integer("observations"));
  config.visibility = 0.06;
  config.seed = static_cast<std::uint64_t>(opts.integer("seed"));

  const auto executors = static_cast<std::size_t>(opts.integer("executors"));
  EngineConfig engine_config;
  engine_config.num_executors = executors;
  engine_config.worker_threads = 2;
  engine_config.partitions_per_core = 8;
  Engine engine(engine_config);
  BlockStore store(15);  // the paper's 15 data nodes

  log_info() << "stage 1-2: simulating " << config.survey.name
             << " and clustering";
  const PipelineRun run = run_full_pipeline(engine, store, config);

  log_info() << "stage 3: D-RAPID searched " << run.result.clusters_searched
             << " clusters / " << run.result.spes_scanned
             << " SPEs, found " << run.result.records.size()
             << " single pulses in " << run.result.wall_seconds
             << " s wall";
  std::size_t pulsars = 0;
  for (const auto& rec : run.result.records) {
    pulsars += !rec.truth_label.empty();
  }
  log_info() << "stage 4 input: " << pulsars
             << " records match injected pulses (ground truth)";

  std::cout << "\nper-stage measured work:\n"
            << run.result.metrics.summary() << '\n';

  const auto sim =
      simulate_cluster(run.result.metrics, ClusterSpec::paper_beowulf(executors));
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"stage", "modeled seconds (beowulf-15, " +
                               std::to_string(executors) + " executors)"});
  for (const auto& s : sim.stages) {
    rows.push_back({s.name, format_number(s.seconds)});
  }
  rows.push_back({"TOTAL", format_number(sim.total_seconds)});
  std::cout << render_table(rows);
  std::cout << "\nML file in block store: " << config.survey.name
            << ".ml.csv (" << store.file_size(config.survey.name + ".ml.csv")
            << " bytes)\n";
  return 0;
}
