#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace drapid {
namespace ml {

namespace {

double entropy(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

int majority(const std::vector<std::size_t>& counts) {
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double score = 0.0;
};

}  // namespace

DecisionTree::DecisionTree(TreeParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void DecisionTree::train(const Dataset& data) {
  if (data.num_instances() == 0) {
    throw std::invalid_argument("cannot train a tree on an empty dataset");
  }
  nodes_.clear();
  depth_ = 0;
  split_evaluations_ = 0;
  std::vector<std::size_t> rows(data.num_instances());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  Rng rng(seed_);
  root_ = build(data, rows, 0, rng);
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& rows,
                        int depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  std::vector<std::size_t> counts(data.num_classes(), 0);
  for (std::size_t r : rows) ++counts[static_cast<std::size_t>(data.label(r))];
  const std::size_t n = rows.size();
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_.back().label = majority(counts);

  const bool pure =
      *std::max_element(counts.begin(), counts.end()) == n;
  if (pure || depth >= params_.max_depth || n < 2 * params_.min_leaf) {
    return node_index;  // leaf
  }

  // Candidate features: all, or a random subset (RandomTree behaviour).
  std::vector<std::size_t> features(data.num_features());
  std::iota(features.begin(), features.end(), std::size_t{0});
  if (params_.features_per_split > 0 &&
      params_.features_per_split < features.size()) {
    rng.shuffle(features);
    features.resize(params_.features_per_split);
  }

  const double parent_entropy = entropy(counts, n);
  BestSplit best;
  std::vector<std::pair<double, int>> sorted;
  sorted.reserve(n);
  std::vector<std::size_t> left_counts(data.num_classes());
  for (std::size_t f : features) {
    sorted.clear();
    for (std::size_t r : rows) {
      sorted.emplace_back(data.instance(r)[f], data.label(r));
    }
    std::sort(sorted.begin(), sorted.end());
    std::fill(left_counts.begin(), left_counts.end(), 0);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      ++left_counts[static_cast<std::size_t>(sorted[i].second)];
      if (sorted[i].first == sorted[i + 1].first) continue;  // same value
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < params_.min_leaf || nr < params_.min_leaf) continue;
      ++split_evaluations_;
      // Right counts = total - left.
      double hl = 0.0, hr = 0.0;
      {
        double h = 0.0;
        for (std::size_t c = 0; c < counts.size(); ++c) {
          const std::size_t lc = left_counts[c];
          if (lc) {
            const double p = static_cast<double>(lc) / static_cast<double>(nl);
            h -= p * std::log2(p);
          }
        }
        hl = h;
        h = 0.0;
        for (std::size_t c = 0; c < counts.size(); ++c) {
          const std::size_t rc = counts[c] - left_counts[c];
          if (rc) {
            const double p = static_cast<double>(rc) / static_cast<double>(nr);
            h -= p * std::log2(p);
          }
        }
        hr = h;
      }
      const double dn = static_cast<double>(n);
      double gain = parent_entropy -
                    (static_cast<double>(nl) / dn) * hl -
                    (static_cast<double>(nr) / dn) * hr;
      if (params_.use_gain_ratio) {
        const double pl = static_cast<double>(nl) / dn;
        const double split_info = -pl * std::log2(pl) -
                                  (1.0 - pl) * std::log2(1.0 - pl);
        gain = split_info > 1e-12 ? gain / split_info : 0.0;
      }
      if (gain > best.score) {
        best.score = gain;
        best.feature = static_cast<int>(f);
        best.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best.feature < 0 || best.score < params_.min_gain) {
    return node_index;  // no useful split: stay a leaf
  }

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    const double v = data.instance(r)[static_cast<std::size_t>(best.feature)];
    (v <= best.threshold ? left_rows : right_rows).push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) {
    return node_index;  // numeric ties can defeat the midpoint; stay a leaf
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes_[static_cast<std::size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_index)].threshold = best.threshold;
  const int left = build(data, left_rows, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  const int right = build(data, right_rows, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

int DecisionTree::predict(std::span<const double> x) const {
  return leaf_label(leaf_index(x));
}

int DecisionTree::leaf_index(std::span<const double> x) const {
  if (root_ < 0) throw std::logic_error("tree not trained");
  int node = root_;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature < 0) return node;
    node = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                 : n.right;
  }
}

int DecisionTree::leaf_label(int leaf) const {
  return nodes_[static_cast<std::size_t>(leaf)].label;
}

std::vector<DecisionTree::PathCondition> DecisionTree::path_to_leaf(
    int leaf) const {
  std::vector<PathCondition> path;
  // Recursive DFS: the condition on the edge into the left child is
  // (feature <= threshold); into the right child, its negation.
  const auto search = [&](const auto& self, int node) -> bool {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (node == leaf) return n.feature < 0;
    if (n.feature < 0) return false;
    path.push_back(PathCondition{n.feature, n.threshold, true});
    if (self(self, n.left)) return true;
    path.back().less_equal = false;
    if (self(self, n.right)) return true;
    path.pop_back();
    return false;
  };
  if (root_ < 0 || !search(search, root_)) {
    throw std::invalid_argument("not a leaf of this tree");
  }
  return path;
}

}  // namespace ml
}  // namespace drapid
