#include "drapid/pipeline.hpp"

#include <cmath>
#include <map>
#include <sstream>

#include "spe/spe_io.hpp"

namespace drapid {

std::vector<double> PipelineData::cluster_sizes() const {
  std::vector<double> sizes;
  sizes.reserve(clusters.size());
  for (const auto& c : clusters) sizes.push_back(static_cast<double>(c.num_spes));
  return sizes;
}

PipelineData prepare_pipeline_data(const PipelineConfig& config) {
  PipelineData data;
  SurveySimulator sim(config.survey, config.seed);
  data.sources = sim.draw_sources();
  data.observations = sim.simulate_many(config.num_observations, data.sources,
                                        config.visibility);

  std::ostringstream data_out, cluster_out;
  data_out << kDataFileHeader << '\n';
  cluster_out << kClusterFileHeader << '\n';
  for (const auto& obs : data.observations) {
    data.total_spes += obs.data.events.size();
    for (const auto& spe : obs.data.events) {
      data_out << format_csv_row(format_data_row(obs.data.id, spe)) << '\n';
    }
    const auto clustering =
        dbscan_cluster(obs.data, *config.survey.grid, config.dbscan);
    for (const auto& rec : make_cluster_records(obs.data, clustering)) {
      cluster_out << format_csv_row(format_cluster_row(rec)) << '\n';
      data.clusters.push_back(rec);
    }
  }
  data.data_csv = data_out.str();
  data.cluster_csv = cluster_out.str();
  return data;
}

void label_records(std::vector<MlRecord>& records,
                   const std::vector<SimulatedObservation>& observations,
                   double dm_tolerance, double time_tolerance_s) {
  std::map<std::string, std::vector<GroundTruthPulse>> truth;
  for (const auto& obs : observations) {
    truth[obs.data.id.key()] = obs.truth;
  }
  label_records(records, truth, dm_tolerance, time_tolerance_s);
}

void label_records(std::vector<MlRecord>& records,
                   const std::map<std::string, std::vector<GroundTruthPulse>>&
                       truth_by_observation,
                   double dm_tolerance, double time_tolerance_s) {
  for (auto& rec : records) {
    rec.truth_label.clear();
    const auto it = truth_by_observation.find(rec.obs.key());
    if (it == truth_by_observation.end()) continue;
    const double peak_dm = rec.features[kSnrPeakDm];
    const double t_lo = rec.features[kStartTime] - time_tolerance_s;
    const double t_hi = rec.features[kStopTime] + time_tolerance_s;
    for (const auto& gt : it->second) {
      if (std::abs(gt.dm - peak_dm) <= dm_tolerance && gt.time_s >= t_lo &&
          gt.time_s <= t_hi) {
        rec.truth_label = gt.type == SourceType::kRrat ? "rrat" : "pulsar";
        break;
      }
    }
  }
}

void label_records_by_catalog(std::vector<MlRecord>& records,
                              const SourceCatalog& catalog,
                              double beam_radius_deg, double dm_tolerance) {
  for (auto& rec : records) {
    rec.truth_label.clear();
    const auto hit =
        catalog.crossmatch(rec.obs.ra_deg, rec.obs.dec_deg,
                           rec.features[kSnrPeakDm], beam_radius_deg,
                           dm_tolerance);
    if (hit) rec.truth_label = hit->is_rrat ? "rrat" : "pulsar";
  }
}

PipelineRun run_full_pipeline(Engine& engine, BlockStore& store,
                              const PipelineConfig& config) {
  PipelineRun run;
  run.data = prepare_pipeline_data(config);
  const std::string data_file = config.survey.name + ".data.csv";
  const std::string cluster_file = config.survey.name + ".clusters.csv";
  const std::string ml_file = config.survey.name + ".ml.csv";
  store.put(data_file, run.data.data_csv);
  store.put(cluster_file, run.data.cluster_csv);
  run.result = run_drapid(engine, store, data_file, cluster_file, ml_file,
                          *config.survey.grid, config.drapid);
  label_records(run.result.records, run.data.observations);
  return run;
}

}  // namespace drapid
