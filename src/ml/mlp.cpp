#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace drapid {
namespace ml {

namespace {
double sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }
}  // namespace

MlpClassifier::MlpClassifier(MlpParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void MlpClassifier::forward(std::span<const double> z,
                            std::vector<double>& hidden_out,
                            std::vector<double>& output) const {
  hidden_out.resize(hidden_);
  for (std::size_t h = 0; h < hidden_; ++h) {
    const double* row = &w1_[h * (inputs_ + 1)];
    double s = row[inputs_];  // bias
    for (std::size_t i = 0; i < inputs_; ++i) s += row[i] * z[i];
    hidden_out[h] = sigmoid(s);
  }
  output.resize(outputs_);
  for (std::size_t o = 0; o < outputs_; ++o) {
    const double* row = &w2_[o * (hidden_ + 1)];
    double s = row[hidden_];
    for (std::size_t h = 0; h < hidden_; ++h) s += row[h] * hidden_out[h];
    output[o] = sigmoid(s);
  }
}

void MlpClassifier::train(const Dataset& data) {
  if (data.num_instances() == 0) {
    throw std::invalid_argument("cannot train MPN on an empty dataset");
  }
  inputs_ = data.num_features();
  outputs_ = data.num_classes();
  hidden_ = params_.hidden != 0 ? params_.hidden : (inputs_ + outputs_) / 2;
  hidden_ = std::max<std::size_t>(2, hidden_);
  weight_updates_ = 0;

  // Standardize inputs.
  mean_.assign(inputs_, 0.0);
  scale_.assign(inputs_, 1.0);
  for (std::size_t f = 0; f < inputs_; ++f) {
    const auto column = data.feature_column(f);
    mean_[f] = mean(column);
    const double sd = stddev(column);
    scale_[f] = sd > 1e-12 ? sd : 1.0;
  }
  std::vector<std::vector<double>> z(data.num_instances(),
                                     std::vector<double>(inputs_));
  for (std::size_t i = 0; i < data.num_instances(); ++i) {
    const auto x = data.instance(i);
    for (std::size_t f = 0; f < inputs_; ++f) {
      z[i][f] = (x[f] - mean_[f]) / scale_[f];
    }
  }

  Rng rng(seed_);
  w1_.resize(hidden_ * (inputs_ + 1));
  w2_.resize(outputs_ * (hidden_ + 1));
  for (auto& w : w1_) w = rng.uniform(-0.5, 0.5);
  for (auto& w : w2_) w = rng.uniform(-0.5, 0.5);
  std::vector<double> dw1(w1_.size(), 0.0), dw2(w2_.size(), 0.0);

  std::vector<std::size_t> order(data.num_instances());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> hidden_out, output, delta_out(outputs_),
      delta_hidden(hidden_);

  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t i : order) {
      forward(z[i], hidden_out, output);
      const auto target = static_cast<std::size_t>(data.label(i));
      for (std::size_t o = 0; o < outputs_; ++o) {
        const double t = (o == target) ? 1.0 : 0.0;
        delta_out[o] = (t - output[o]) * output[o] * (1.0 - output[o]);
      }
      for (std::size_t h = 0; h < hidden_; ++h) {
        double s = 0.0;
        for (std::size_t o = 0; o < outputs_; ++o) {
          s += delta_out[o] * w2_[o * (hidden_ + 1) + h];
        }
        delta_hidden[h] = s * hidden_out[h] * (1.0 - hidden_out[h]);
      }
      for (std::size_t o = 0; o < outputs_; ++o) {
        double* row = &w2_[o * (hidden_ + 1)];
        double* drow = &dw2[o * (hidden_ + 1)];
        for (std::size_t h = 0; h < hidden_; ++h) {
          drow[h] = params_.learning_rate * delta_out[o] * hidden_out[h] +
                    params_.momentum * drow[h];
          row[h] += drow[h];
        }
        drow[hidden_] = params_.learning_rate * delta_out[o] +
                        params_.momentum * drow[hidden_];
        row[hidden_] += drow[hidden_];
      }
      for (std::size_t h = 0; h < hidden_; ++h) {
        double* row = &w1_[h * (inputs_ + 1)];
        double* drow = &dw1[h * (inputs_ + 1)];
        for (std::size_t f = 0; f < inputs_; ++f) {
          drow[f] = params_.learning_rate * delta_hidden[h] * z[i][f] +
                    params_.momentum * drow[f];
          row[f] += drow[f];
        }
        drow[inputs_] = params_.learning_rate * delta_hidden[h] +
                        params_.momentum * drow[inputs_];
        row[inputs_] += drow[inputs_];
      }
      weight_updates_ += w1_.size() + w2_.size();
    }
  }
}

int MlpClassifier::predict(std::span<const double> x) const {
  if (w1_.empty()) throw std::logic_error("MPN not trained");
  std::vector<double> z(inputs_);
  for (std::size_t f = 0; f < inputs_; ++f) {
    z[f] = (x[f] - mean_[f]) / scale_[f];
  }
  std::vector<double> hidden_out, output;
  forward(z, hidden_out, output);
  return static_cast<int>(
      std::max_element(output.begin(), output.end()) - output.begin());
}

}  // namespace ml
}  // namespace drapid
